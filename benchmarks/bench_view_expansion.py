"""Experiment R2/Q2 — Section 3.1/3.2: view expansion and unifiers.

Regenerates the paper's rule R2 and unifier θ1 and measures expansion
cost as the specification grows (more rules to match against) and as
queries carry more conditions (unifier combinations multiply).
"""

import pytest

from repro.datasets import JOE_CHUNG_QUERY, MS1
from repro.mediator import ViewExpander
from repro.msl import parse_query, parse_specification


@pytest.fixture(scope="module")
def expander():
    return ViewExpander("med", parse_specification(MS1), push_mode="needed")


def test_r2_and_theta1_artifact(expander, artifact_sink, benchmark):
    query = parse_query(JOE_CHUNG_QUERY)
    program = benchmark(expander.expand, query)
    artifact_sink(
        "Section 3.1 — datamerge rule R2 for query Q1",
        str(program),
    )
    artifact_sink(
        "Section 3.2 — unifier theta_1",
        str(program.rules[0].unifier),
    )
    assert len(program) == 1


def make_wide_spec(rules: int) -> str:
    """A specification with many rules exporting distinct labels."""
    parts = [
        f"<view{i} {{<name N> <tag{i} T> | Rest}}> :-"
        f" <person {{<name N> <tag{i} T> | Rest}}>@src{i}"
        for i in range(rules)
    ]
    return " ; ".join(parts)


@pytest.mark.parametrize("rules", [1, 8, 32, 128])
def test_expansion_scales_with_rule_count(rules, benchmark):
    """Cost of matching one query against N rule heads."""
    expander = ViewExpander(
        "m", parse_specification(make_wide_spec(rules)), push_mode="needed"
    )
    query = parse_query("X :- X:<view0 {<name 'a'>}>@m")
    program = benchmark(expander.expand, query)
    assert len(program) == 1  # only one head label matches


@pytest.mark.parametrize("conditions", [1, 2, 3])
def test_expansion_with_multiple_query_conditions(conditions, benchmark):
    spec = parse_specification(
        "<v {<k K> <a A> <b B> <c C>}> :- <s {<k K> <a A> <b B> <c C>}>@src"
    )
    expander = ViewExpander("m", spec, push_mode="needed")
    names = ["A", "B", "C"][:conditions]
    tail = " AND ".join(
        f"X{i}:<v {{<k 'q'> <{n.lower()} {n}>}}>@m"
        for i, n in enumerate(names)
    )
    query = parse_query(f"{' '.join(f'X{i}' for i in range(conditions))} :- {tail}")
    program = benchmark(expander.expand, query)
    assert len(program) == 1


def test_complete_mode_generates_more_rules(benchmark, artifact_sink):
    """The completeness cost of push_mode='complete' (ablation)."""
    complete = ViewExpander(
        "med", parse_specification(MS1), push_mode="complete"
    )
    needed = ViewExpander("med", parse_specification(MS1), push_mode="needed")
    query = parse_query(JOE_CHUNG_QUERY)
    program = benchmark(complete.expand, query)
    artifact_sink(
        "Ablation — logical program sizes by push mode",
        f"complete: {len(program)} rules; needed:"
        f" {len(needed.expand(query))} rule(s)",
    )
    assert len(program) > len(needed.expand(query))

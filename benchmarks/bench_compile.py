"""Experiment S5 — compiled pattern backend vs the interpretive matcher.

The compiler (``repro.msl.compile``) lowers rule tails into specialized
closures over integer-register frames at view-definition time; this
harness quantifies what that buys.  Three layers are measured on the
same data with both backends: raw pattern matching, full rule
evaluation (dedup included), and end-to-end mediation.  A final check
re-asserts the equivalence contract on the exact workloads timed here —
a speedup that changed any answer would be a bug, not a result.

Results land in ``BENCH_compile.json`` (machine-readable, consumed by
the CI compile-smoke job) and ``artifacts.txt``/EXPERIMENTS.md.
"""

import time

import pytest

from repro.datasets import build_scaled_scenario, record_forest
from repro.msl import (
    compile_pattern,
    compile_rule,
    evaluate_rule,
    match_all,
    parse_pattern,
    parse_rule,
)
from repro.oem import key_computations, structural_key

#: (name, pattern text) — the matcher shapes that dominate real plans
PATTERNS = [
    ("constant filter", "<person {<dept 'dept_10'>}>"),
    ("variable extraction", "<person {<name N> <dept D>}>"),
    ("rest variable", "<person {<name N> | Rest}>"),
    ("join variable", "<person {<name X> <dept X>}>"),
]

RULE_TEXTS = [
    ("filter rule", "<hit N> :- <person {<name N> <dept 'dept_10'>}>@s"),
    ("rest rule", "<keep N R> :- <person {<name N> | R}>@s"),
    (
        "comparison rule",
        "<young N> :- <person {<name N> <year Y>}>@s AND Y < 2",
    ),
]


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def forest():
    return record_forest(1000, seed=3, irregular_fraction=0.2)


def test_pattern_match_speedup(forest, artifact_sink, bench_json_sink):
    """Single-thread matcher throughput, interpretive vs compiled."""
    rows = []
    payload = {}
    for name, text in PATTERNS:
        pattern = parse_pattern(text)
        compiled = compile_pattern(pattern)
        # equivalence first: same environments, same order
        assert [e.key() for e in compiled.match_all(forest)] == [
            e.key() for e in match_all(pattern, forest)
        ]
        interpretive = _time(lambda: match_all(pattern, forest), 5)
        fast = _time(lambda: compiled.match_all(forest), 5)
        speedup = interpretive / fast
        rows.append((name, interpretive * 200, fast * 200, speedup))
        payload[name] = {
            "interpretive_ms": interpretive * 200,
            "compiled_ms": fast * 200,
            "speedup": speedup,
        }

    table = (
        "pattern               interp-ms  compiled-ms  speedup\n"
        + "\n".join(
            f"{n:<21} {i:>9.2f}  {c:>11.2f}  {s:>6.2f}x"
            for n, i, c, s in rows
        )
    )
    artifact_sink(
        "S5 — pattern matching: interpretive vs compiled (1000 objects)",
        table,
    )
    bench_json_sink("BENCH_compile.json", "pattern_matching", payload)
    # the headline number: geometric-mean speedup across shapes
    product = 1.0
    for _, _, _, s in rows:
        product *= s
    mean = product ** (1 / len(rows))
    bench_json_sink(
        "BENCH_compile.json", "pattern_speedup_geomean", mean
    )
    assert mean >= 1.5, f"compiled backend only {mean:.2f}x faster"


def test_rule_evaluation_speedup(forest, artifact_sink, bench_json_sink):
    """Full rule evaluation: dedup, head instantiation, comparisons."""
    from repro.oem.oid import OidGenerator

    forests = {"s": forest, None: forest}
    rows = []
    payload = {}
    for name, text in RULE_TEXTS:
        rule = parse_rule(text)
        compiled = compile_rule(rule)
        assert [
            repr(o)
            for o in compiled.evaluate(
                forests, oidgen=OidGenerator("&v"), check=False
            )
        ] == [
            repr(o)
            for o in evaluate_rule(
                rule, forests, oidgen=OidGenerator("&v"), check=False
            )
        ]
        interpretive = _time(
            lambda: evaluate_rule(
                rule, forests, oidgen=OidGenerator("&v"), check=False
            ),
            5,
        )
        fast = _time(
            lambda: compiled.evaluate(
                forests, oidgen=OidGenerator("&v"), check=False
            ),
            5,
        )
        speedup = interpretive / fast
        rows.append((name, interpretive * 200, fast * 200, speedup))
        payload[name] = {
            "interpretive_ms": interpretive * 200,
            "compiled_ms": fast * 200,
            "speedup": speedup,
        }

    table = (
        "rule                  interp-ms  compiled-ms  speedup\n"
        + "\n".join(
            f"{n:<21} {i:>9.2f}  {c:>11.2f}  {s:>6.2f}x"
            for n, i, c, s in rows
        )
    )
    artifact_sink(
        "S5 — rule evaluation: interpretive vs compiled (1000 objects)",
        table,
    )
    bench_json_sink("BENCH_compile.json", "rule_evaluation", payload)


def _mediators(people: int):
    """The same scaled data behind both backends, wrappers included:
    the same seed regenerates identical sources, so the only variable
    is the pattern backend all the way down."""
    compiled = build_scaled_scenario(
        people, push_mode="needed", compile=True
    )
    interpretive = build_scaled_scenario(
        people, push_mode="needed", compile=False
    )
    return compiled, compiled.mediator, interpretive.mediator


def test_mediator_end_to_end(artifact_sink, bench_json_sink):
    """Whole-pipeline effect: wrappers and mediator both compiled."""
    scenario, compiled, interpretive = _mediators(200)
    name = scenario.whois.export()[100].get("name")
    query = f"X :- X:<cs_person {{<name '{name}'>}}>@med"

    assert [repr(o) for o in compiled.answer(query)] == [
        repr(o) for o in interpretive.answer(query)
    ]

    slow = _time(lambda: interpretive.answer(query), 5)
    fast = _time(lambda: compiled.answer(query), 5)
    slow_export = _time(interpretive.export, 1)
    fast_export = _time(compiled.export, 1)

    text = (
        f"point query: interpretive {slow * 200:.2f} ms/op,"
        f" compiled {fast * 200:.2f} ms/op"
        f" ({slow / fast:.2f}x)\n"
        f"full export: interpretive {slow_export * 1000:.2f} ms/op,"
        f" compiled {fast_export * 1000:.2f} ms/op"
        f" ({slow_export / fast_export:.2f}x)"
    )
    artifact_sink(
        "S5 — end-to-end mediation: interpretive vs compiled"
        " (200 people)",
        text,
    )
    bench_json_sink(
        "BENCH_compile.json",
        "mediation",
        {
            "point_query_speedup": slow / fast,
            "export_speedup": slow_export / fast_export,
        },
    )


def test_structural_key_memoization(bench_json_sink):
    """Dedup over an already-keyed forest recomputes nothing."""
    forest = record_forest(500, seed=9)
    for obj in forest:
        structural_key(obj)
    before = key_computations()
    from repro.oem import eliminate_duplicates

    eliminate_duplicates(forest)
    recomputed = key_computations() - before
    bench_json_sink(
        "BENCH_compile.json", "key_recomputations_on_warm_dedup", recomputed
    )
    assert recomputed == 0


def test_compiled_backend_stays_equivalent(benchmark):
    """The harness's own guard: compiled answers equal interpretive
    ones on the scaled scenario's export (the broadest single check).
    Structural keys, because mediator oids advance across rounds."""
    scenario, compiled, interpretive = _mediators(60)
    expected = sorted(repr(structural_key(o)) for o in interpretive.export())

    def run():
        return sorted(repr(structural_key(o)) for o in compiled.export())

    assert benchmark(run) == expected

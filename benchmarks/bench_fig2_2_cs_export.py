"""Experiment F2.2 — Figure 2.2: the ``cs`` wrapper's OEM export.

Regenerates the figure (relational tuples as labelled OEM objects) and
measures relational→OEM translation throughput, both for a full export
and for a selective query that exploits the wrapper's native access
path (the pushed-down selection).
"""

import pytest

from repro.datasets import build_cs_database, build_scaled_scenario
from repro.msl import parse_rule
from repro.oem import to_text
from repro.wrappers import RelationalWrapper


@pytest.fixture(scope="module")
def paper_wrapper():
    return RelationalWrapper("cs", build_cs_database())


@pytest.fixture(scope="module")
def scaled_wrapper():
    return build_scaled_scenario(500, seed=2).cs


def test_figure_2_2_artifact(paper_wrapper, artifact_sink, benchmark):
    """The figure itself: both tuples, schema folded into the objects."""
    export = benchmark(paper_wrapper.export)
    artifact_sink("Figure 2.2 — OEM export of the cs wrapper", to_text(export))
    assert [o.label for o in export] == ["employee", "student"]
    (employee,) = [o for o in export if o.label == "employee"]
    assert employee.get("title") == "professor"


def test_full_export_at_scale(scaled_wrapper, benchmark):
    """Translation cost for ~500 tuples."""
    export = benchmark(scaled_wrapper.export)
    assert len(export) >= 400


def test_selective_query_uses_native_selection(scaled_wrapper, benchmark):
    """A constant-filter query must beat translating the whole database."""
    query_text = (
        "<bind_for_Rest2 Rest2> :- "
        "<student {<year 3> | Rest2}>@cs"
    )

    def run():
        return scaled_wrapper.answer(parse_rule(query_text))

    result = benchmark(run)
    assert 0 < len(result) < len(scaled_wrapper.export())


def test_point_query(scaled_wrapper, benchmark):
    """The paper's Qcs shape: lookup by first/last name."""
    export = scaled_wrapper.export()
    target = export[0]
    query_text = (
        f"<bind_for_Rest2 Rest2> :- <{target.label} "
        f"{{<last_name '{target.get('last_name')}'> "
        f"<first_name '{target.get('first_name')}'> | Rest2}}>@cs"
    )

    def run():
        return scaled_wrapper.answer(parse_rule(query_text))

    result = benchmark(run)
    assert len(result) == 1

"""Experiment S7 — sharded source tier and semi-join shipping.

The question: on a probe-dominated bind join against a million-object
disk-backed source, what does the sharded tier buy?  Three mechanisms
compose:

* **semi-join shipping** — the bind join's U per-tuple probes collapse
  into one batched value filter per surviving shard, so the wire cost
  drops from O(tuples) to O(shards);
* **shard parallelism** — the surviving batches fan across the
  dispatcher's workers, so even the batched calls overlap;
* **indexed stores** — each shard is a :class:`SQLiteOEMStoreWrapper`,
  answering a batch with one indexed ``IN`` scan instead of a store
  scan.

Every source call carries injected wire latency (as in
``bench_parallel.py``), which is what makes the workload
probe-dominated: the unsharded per-tuple reference pays that latency
once per probe, the sharded runs once per batch.  Before any timing,
the sharded answer is asserted bit-for-bit (structural-key) equal to
the unsharded reference, and the probes-shipped counters are asserted
to prove O(shards) batches.  Numbers land in
``benchmarks/BENCH_shard.json``.

Scale knobs (env): ``BENCH_SHARD_OBJECTS`` (default 1,000,000 records
in the big source) and ``BENCH_SHARD_PROBES`` (default 48 driver
probes).
"""

import os
import time

from repro.datasets import probe_keys, record_stream, route_records
from repro.external.registry import default_registry
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.oem.builders import atom, obj
from repro.reliability import FaultInjectingSource
from repro.reliability.clock import MonotonicClock
from repro.wrappers import (
    HashPartition,
    OEMStoreWrapper,
    ShardedSource,
    SourceRegistry,
    SQLiteOEMStoreWrapper,
    shard_name,
)

OBJECTS = int(os.environ.get("BENCH_SHARD_OBJECTS", "1000000"))
PROBES = int(os.environ.get("BENCH_SHARD_PROBES", "48"))
LATENCY = 0.02  # real seconds slept per source call
PARALLELISM = 8
SHARD_COUNTS = (1, 4, 8)
SEED = 1996

SPEC = (
    "<hit {<k K> <p P>}> :- <probe {<key K>}>@driver"
    " AND <rec {<key K> <payload P>}>@big"
)
QUERY = "H :- H:<hit {}>@med"
JSON_FILE = "BENCH_shard.json"


def _canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def _load_unsharded(clock):
    store = SQLiteOEMStoreWrapper("big")
    start = time.perf_counter()
    store.load_records("rec", record_stream(OBJECTS, seed=SEED))
    seconds = time.perf_counter() - start
    return FaultInjectingSource(store, latency=LATENCY, clock=clock), seconds


def _load_sharded(shards, clock):
    partition = HashPartition("key", shards)
    stores = [
        SQLiteOEMStoreWrapper(shard_name("big", index))
        for index in range(shards)
    ]
    start = time.perf_counter()
    for index, batch in route_records(
        record_stream(OBJECTS, seed=SEED), partition, shards
    ):
        stores[index].load_records("rec", batch)
    seconds = time.perf_counter() - start
    wrapped = [
        FaultInjectingSource(store, latency=LATENCY, clock=clock)
        for store in stores
    ]
    return ShardedSource("big", wrapped, partition), seconds


def _mediator(big, keys, semijoin=True):
    registry = SourceRegistry()
    registry.register(
        OEMStoreWrapper(
            "driver", [obj("probe", atom("key", k)) for k in keys]
        )
    )
    registry.register(big)
    return Mediator(
        "med",
        SPEC,
        registry,
        default_registry(),
        parallelism=PARALLELISM,
        semijoin=semijoin,
    )


def _best_of(fn, rounds=2):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_shard_speedup_curve(artifact_sink, bench_json_sink):
    """Answer time and probes shipped vs shard count, 1M-object store."""
    clock = MonotonicClock()
    keys = probe_keys(PROBES, OBJECTS, seed=SEED)
    distinct = len(set(keys))

    reference_source, reference_load = _load_unsharded(clock)
    reference = _mediator(reference_source, keys, semijoin=False)
    expected = _canonical(reference.query(QUERY).objects())
    assert expected, "the probe workload must produce hits"
    baseline = _best_of(lambda: reference.query(QUERY))
    # the per-tuple reference ships one probe per distinct key
    reference_probes = reference.last_context.queries_sent.get("big", 0)
    assert reference_probes == distinct

    rows = [
        "shards   s/answer   speedup   probes-shipped   load-s",
        f"  none   {baseline:8.4f}     1.00x   {reference_probes:14d}"
        f"   {reference_load:6.1f}",
    ]
    curve = []
    speedups = {}
    for shards in SHARD_COUNTS:
        big, load_seconds = _load_sharded(shards, clock)
        mediator = _mediator(big, keys)
        # equivalence before timing: bit-for-bit (structural-key)
        # equal to the unsharded per-tuple reference
        assert _canonical(mediator.query(QUERY).objects()) == expected
        context = mediator.last_context
        # O(shards) batched filters, never O(tuples) probes
        assert 1 <= context.semijoin_batches <= shards
        assert context.semijoin_probes == distinct
        seconds = _best_of(lambda: mediator.query(QUERY))
        speedup = baseline / seconds
        speedups[shards] = speedup
        rows.append(
            f"{shards:6d}   {seconds:8.4f}   {speedup:6.2f}x"
            f"   {context.semijoin_batches:14d}   {load_seconds:6.1f}"
        )
        curve.append(
            {
                "shards": shards,
                "seconds_per_answer": round(seconds, 6),
                "speedup": round(speedup, 3),
                "batches_shipped": context.semijoin_batches,
                "probes_deduped": context.semijoin_probes,
                "probes_saved": context.semijoin_probes_saved,
                "load_seconds": round(load_seconds, 3),
            }
        )
        mediator.close()

    assert speedups[8] >= 3.0, (
        f"expected >= 3x at 8 shards, got {speedups[8]:.2f}x"
    )

    artifact_sink(
        "sharded semi-join speedup (1M-object SQLite store)",
        f"objects={OBJECTS} probes={PROBES} latency={LATENCY}s/call"
        f" parallelism={PARALLELISM}\n" + "\n".join(rows),
    )
    bench_json_sink(
        JSON_FILE,
        "speedup_curve",
        {
            "objects": OBJECTS,
            "probes": PROBES,
            "distinct_probes": distinct,
            "latency_per_call_s": LATENCY,
            "parallelism": PARALLELISM,
            "query": QUERY,
            "baseline_seconds": round(baseline, 6),
            "baseline_probes_shipped": reference_probes,
            "levels": curve,
        },
    )
    reference.close()


def test_bloom_equals_exact(artifact_sink, bench_json_sink):
    """Bloom-filter shipping: same answer, bounded filter bytes.

    Above the threshold the mediator ships a fixed-size Bloom digest
    instead of the explicit value set and re-checks the returned
    superset exactly; the answer must not change.
    """
    clock = MonotonicClock()
    # a smaller store keeps this section fast; the property under test
    # (bloom == exact) is size-independent
    objects = min(OBJECTS, 100_000)
    partition = HashPartition("key", 4)
    stores = [
        SQLiteOEMStoreWrapper(shard_name("big", index)) for index in range(4)
    ]
    for index, batch in route_records(
        record_stream(objects, seed=SEED), partition, 4
    ):
        stores[index].load_records("rec", batch)
    wrapped = [
        FaultInjectingSource(store, latency=0.0, clock=clock)
        for store in stores
    ]
    keys = probe_keys(256, objects, seed=SEED)

    def run(bloom_threshold):
        big = ShardedSource("big", wrapped, partition)
        mediator = Mediator(
            "med",
            SPEC,
            _registry_for(big, keys),
            default_registry(),
            parallelism=PARALLELISM,
            bloom_threshold=bloom_threshold,
        )
        result = _canonical(mediator.query(QUERY).objects())
        seconds = _best_of(lambda: mediator.query(QUERY))
        mediator.close()
        return result, seconds

    exact_result, exact_seconds = run(bloom_threshold=1_000_000)
    bloom_result, bloom_seconds = run(bloom_threshold=1)
    assert bloom_result == exact_result

    artifact_sink(
        "bloom-filter shipping equals exact sets",
        f"objects={objects} probes=256 exact={exact_seconds:.4f}s"
        f" bloom={bloom_seconds:.4f}s (equal answers)",
    )
    bench_json_sink(
        JSON_FILE,
        "bloom_vs_exact",
        {
            "objects": objects,
            "probes": 256,
            "exact_seconds": round(exact_seconds, 6),
            "bloom_seconds": round(bloom_seconds, 6),
        },
    )


def _registry_for(big, keys):
    registry = SourceRegistry()
    registry.register(
        OEMStoreWrapper(
            "driver", [obj("probe", atom("key", k)) for k in keys]
        )
    )
    registry.register(big)
    return registry

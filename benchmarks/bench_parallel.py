"""Experiment P1 — concurrent source fan-out, caching, and dedup.

Three questions the execution layer must answer before ``parallelism``
is worth turning on:

* **speedup** — on a latency-bound fan-out workload (every source call
  really sleeps), how much wall-clock time does spreading independent
  calls over N workers save?  Target: >= 3x at ``parallelism=8``;
* **overhead** — with ``parallelism=1`` (the default) the dispatcher
  must stay out of the way: answer time within noise of the plain
  sequential engine;
* **cache value** — on a repeated-query workload the answer cache
  should serve > 90% of source requests from memory and cut the
  latency-bound answer time accordingly.

Correctness rides along: every parallel run is compared object-for-
object against the sequential answer.  Numbers land in
``benchmarks/BENCH_parallel.json`` (via ``bench_json_sink``) and in
the artifacts file quoted by EXPERIMENTS.md.
"""

import time

from repro.datasets import build_scaled_scenario
from repro.exec import AnswerCache
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.reliability import FaultInjectingSource
from repro.reliability.clock import MonotonicClock

PEOPLE = 24
LATENCY = 0.02  # real seconds slept per source call
FANOUT_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"
JSON_FILE = "BENCH_parallel.json"


def _canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def _latency_scenario():
    """The scaled staff scenario with every source call really sleeping."""
    scenario = build_scaled_scenario(PEOPLE, seed=1996, push_mode="needed")
    clock = MonotonicClock()
    for name in ("whois", "cs"):
        inner = scenario.registry.resolve(name)
        scenario.registry.deregister(name)
        scenario.registry.register(
            FaultInjectingSource(inner, latency=LATENCY, clock=clock)
        )
    return scenario


def _mediator(scenario, parallelism=1, cache=None):
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        push_mode="needed",
        register=False,
        parallelism=parallelism,
        cache=cache,
    )


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_speedup_curve(artifact_sink, bench_json_sink, benchmark):
    """Answer time vs parallelism on the latency-injected fan-out."""
    scenario = _latency_scenario()
    baseline_mediator = _mediator(scenario, parallelism=1)
    expected = _canonical(baseline_mediator.answer(FANOUT_QUERY))
    baseline = _best_of(
        lambda: baseline_mediator.answer(FANOUT_QUERY)
    )

    rows = ["parallelism   s/answer   speedup"]
    curve = []
    speedups = {1: 1.0}
    for parallelism in (1, 2, 4, 8):
        mediator = _mediator(scenario, parallelism=parallelism)
        assert _canonical(mediator.answer(FANOUT_QUERY)) == expected
        seconds = _best_of(lambda: mediator.answer(FANOUT_QUERY))
        speedup = baseline / seconds
        speedups[parallelism] = speedup
        rows.append(
            f"{parallelism:11d}   {seconds:8.4f}   {speedup:6.2f}x"
        )
        curve.append(
            {
                "parallelism": parallelism,
                "seconds_per_answer": round(seconds, 6),
                "speedup": round(speedup, 3),
            }
        )

    artifact_sink(
        "parallel fan-out speedup (real per-call latency)",
        f"people={PEOPLE} latency={LATENCY}s/call"
        f" query={FANOUT_QUERY!r}\n" + "\n".join(rows),
    )
    bench_json_sink(
        JSON_FILE,
        "speedup_curve",
        {
            "people": PEOPLE,
            "latency_per_call_s": LATENCY,
            "query": FANOUT_QUERY,
            "baseline_seconds": round(baseline, 6),
            "levels": curve,
        },
    )

    fast = _mediator(scenario, parallelism=8)
    benchmark(fast.answer, FANOUT_QUERY)
    assert speedups[8] >= 3.0, (
        f"parallelism=8 speedup {speedups[8]:.2f}x, expected >= 3x"
    )


def test_parallelism_one_overhead(artifact_sink, bench_json_sink, benchmark):
    """The default configuration must not tax the sequential engine."""
    rounds = 30
    seed_scenario = build_scaled_scenario(PEOPLE, push_mode="needed")
    dispatcher_scenario = build_scaled_scenario(PEOPLE, push_mode="needed")
    dispatcher_mediator = _mediator(dispatcher_scenario, parallelism=1)

    expected = _canonical(seed_scenario.mediator.answer(FANOUT_QUERY))
    assert _canonical(dispatcher_mediator.answer(FANOUT_QUERY)) == expected

    def timed(mediator):
        start = time.perf_counter()
        for _ in range(rounds):
            mediator.answer(FANOUT_QUERY)
        return (time.perf_counter() - start) / rounds

    seed_time = timed(seed_scenario.mediator)
    dispatcher_time = timed(dispatcher_mediator)
    overhead = dispatcher_time / seed_time - 1.0

    artifact_sink(
        "parallelism=1 dispatcher overhead",
        f"people={PEOPLE} rounds={rounds}\n"
        f"seed engine    : {seed_time * 1e3:8.3f} ms/answer\n"
        f"parallelism=1  : {dispatcher_time * 1e3:8.3f} ms/answer\n"
        f"overhead       : {overhead * 100:+.2f}%  (target: noise)",
    )
    bench_json_sink(
        JSON_FILE,
        "parallelism_one_overhead",
        {
            "people": PEOPLE,
            "rounds": rounds,
            "seed_seconds_per_answer": round(seed_time, 6),
            "dispatcher_seconds_per_answer": round(dispatcher_time, 6),
            "overhead_fraction": round(overhead, 4),
        },
    )

    benchmark(dispatcher_mediator.answer, FANOUT_QUERY)
    # generous CI bound; the artifact records the real number
    assert overhead < 0.25, f"parallelism=1 overhead {overhead:.1%}"


def test_cache_hit_rate_on_repeated_queries(
    artifact_sink, bench_json_sink, benchmark
):
    """Repeats of a fan-out query should be served from the cache."""
    repeats = 20
    scenario = _latency_scenario()
    expected = _canonical(
        _mediator(scenario, parallelism=1).answer(FANOUT_QUERY)
    )

    cache = AnswerCache(max_entries=128)
    cached_mediator = _mediator(scenario, parallelism=4, cache=cache)
    uncached_mediator = _mediator(scenario, parallelism=4)

    start = time.perf_counter()
    for _ in range(repeats):
        assert _canonical(cached_mediator.answer(FANOUT_QUERY)) == expected
    cached_time = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(3):
        uncached_mediator.answer(FANOUT_QUERY)
    uncached_time = (time.perf_counter() - start) / 3

    stats = cache.stats()
    artifact_sink(
        "answer cache on repeated queries (real per-call latency)",
        f"repeats={repeats} people={PEOPLE} latency={LATENCY}s/call\n"
        f"hit rate : {stats['hit_rate']:.3f}"
        f"  ({stats['hits']} hits / {stats['misses']} misses,"
        f" {stats['entries']} entries)\n"
        f"uncached : {uncached_time * 1e3:8.3f} ms/answer\n"
        f"cached   : {cached_time * 1e3:8.3f} ms/answer",
    )
    bench_json_sink(
        JSON_FILE,
        "cache_hit_rate",
        {
            "repeats": repeats,
            "hit_rate": round(stats["hit_rate"], 4),
            "hits": stats["hits"],
            "misses": stats["misses"],
            "entries": stats["entries"],
            "uncached_seconds_per_answer": round(uncached_time, 6),
            "cached_seconds_per_answer": round(cached_time, 6),
        },
    )

    benchmark(cached_mediator.answer, FANOUT_QUERY)
    assert stats["hit_rate"] > 0.9, (
        f"cache hit rate {stats['hit_rate']:.3f}, expected > 0.9"
    )

"""Experiment S6 — whole-plan operator fusion vs node-per-operator.

Operator fusion (:mod:`repro.mediator.pipeline`) collapses straight-line
datamerge chains into single pipeline nodes that skip intermediate
``BindingTable`` materialization and run compiled head instantiation
(:func:`repro.msl.compile.compile_head_item`) in the constructor stage.
This harness measures what that buys on plans where mediator-side CPU —
extraction, filtering, joining, construction — dominates, and re-asserts
the equivalence contract on the exact workloads timed here: fused
answers must equal unfused answers **bit-for-bit** (repr streams, which
include mediator-assigned oids) before any timing counts.

Sources are wrapped in a memoizing :class:`Snapshot` so repeated rounds
pay no source-side evaluation: what is timed is the datamerge engine,
which is what fusion changes.  Timing is interleaved A/B with a
``gc.collect()`` before each pair and medians across rounds — fused and
unfused runs see the same allocator and cache state.

Results land in ``BENCH_pipeline_fusion.json`` (consumed by the CI
fusion-smoke job) and ``artifacts.txt``/EXPERIMENTS.md.

Naming note: this file measures **operator** fusion (the physical-plan
optimization) and, in the S4 section at the bottom, semantic-oid
**object** fusion (result merging, :mod:`repro.mediator.fusion` —
formerly the separate ``bench_fusion.py``).
"""

import gc
import random
import statistics
import time

import pytest

from repro.datasets import (
    build_bibliography,
    build_scaled_scenario,
    record_forest,
)
from repro.external.registry import default_registry
from repro.mediator import Mediator, fuse_objects
from repro.oem import OEMObject, SemanticOid, atom
from repro.wrappers import OEMStoreWrapper, SourceRegistry
from repro.wrappers.capability import Capability

ROUNDS = 7

#: Forces every rest-condition comparison to a mediator-side FilterNode,
#: giving the fused chains filter stages to swallow.
NO_COMPARISONS = Capability(supports_comparisons=False, name="nc")

FILTER_SPEC = """
<hit {<name N> <year Y>}> :-
    <person {<name N> <dept D> <year Y>}>@people
    AND Y != 1952 AND Y != 2015 ;
"""

JOIN_SPEC = """
<hit {<name N> <year Y> <salary S> <grade G>}> :-
    <person {<name N> <dept D> <year Y>}>@people
    AND <pay {<name N> <salary S> <grade G>}>@payroll
    AND Y != 3 ;
"""

QUERY = "H :- H:<hit {<name N>}>@med"


class Snapshot:
    """Memoize a wrapper's answers so rounds time mediator CPU only."""

    def __init__(self, inner):
        self.inner = inner
        self._memo = {}

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def answer(self, query):
        key = str(query)
        hit = self._memo.get(key)
        if hit is None:
            hit = self._memo[key] = self.inner.answer(query)
        return list(hit)


class SlowSource:
    """Add real per-call latency: the dispatcher's reason to exist."""

    def __init__(self, inner, delay: float):
        self.inner = inner
        self.delay = delay

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def answer(self, query):
        time.sleep(self.delay)
        return self.inner.answer(query)


def payroll_forest(count: int, seed: int = 7) -> list[OEMObject]:
    """Records joinable with ``record_forest`` on the ``name`` field."""
    rng = random.Random(seed)
    return [
        OEMObject(
            "pay",
            [
                atom("name", f"name_{i}"),
                atom("salary", rng.randrange(30_000, 90_000)),
                atom("grade", rng.randrange(1, 9)),
            ],
            "set",
        )
        for i in range(count)
    ]


def build_filter_mediator(count: int, fuse: bool) -> Mediator:
    """query => extract => filter => filter => construct, one chain."""
    registry = SourceRegistry()
    registry.register(
        Snapshot(
            OEMStoreWrapper(
                "people",
                record_forest(count, seed=3),
                capability=NO_COMPARISONS,
            )
        )
    )
    return Mediator(
        "med", FILTER_SPEC, registry, default_registry(), fuse=fuse
    )


def build_join_mediator(count: int, fuse: bool) -> Mediator:
    """Two extract chains into a JoinNode barrier, then a fused
    filter => construct chain above it (fetch_all strategy)."""
    registry = SourceRegistry()
    registry.register(
        Snapshot(
            OEMStoreWrapper(
                "people",
                record_forest(count, seed=3),
                capability=NO_COMPARISONS,
            )
        )
    )
    registry.register(
        Snapshot(
            OEMStoreWrapper(
                "payroll", payroll_forest(count), capability=NO_COMPARISONS
            )
        )
    )
    return Mediator(
        "med",
        JOIN_SPEC,
        registry,
        default_registry(),
        strategy="fetch_all",
        fuse=fuse,
    )


SCENARIOS = [
    ("filter-construct 2k", lambda fuse: build_filter_mediator(2000, fuse)),
    ("filter-construct 4k", lambda fuse: build_filter_mediator(4000, fuse)),
    ("join-construct 2k", lambda fuse: build_join_mediator(2000, fuse)),
]


def _interleaved(fused_run, unfused_run, rounds: int = ROUNDS):
    """Median seconds per run for both paths, measured A/B per round."""
    fused_times, unfused_times = [], []
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        fused_run()
        fused_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        unfused_run()
        unfused_times.append(time.perf_counter() - start)
    return statistics.median(fused_times), statistics.median(unfused_times)


def test_fusion_speedup(artifact_sink, bench_json_sink):
    """The headline: ≥1.5x median speedup, bit-for-bit equal answers."""
    rows = []
    payload = {}
    for name, build in SCENARIOS:
        fused = build(True)
        unfused = build(False)
        # equivalence first (this is the fuse=False consistency check:
        # same rows, same order, same mediator-assigned oids) — it also
        # warms the Snapshot memos and plan caches
        fused_answers = [repr(o) for o in fused.query(QUERY)]
        unfused_answers = [repr(o) for o in unfused.query(QUERY)]
        assert fused_answers == unfused_answers
        assert fused.last_fusion and any(d.fused for d in fused.last_fusion)
        fused_s, unfused_s = _interleaved(
            lambda: fused.query(QUERY), lambda: unfused.query(QUERY)
        )
        speedup = unfused_s / fused_s
        rows.append(
            (name, unfused_s * 1000, fused_s * 1000, speedup)
        )
        payload[name] = {
            "answers": len(fused_answers),
            "unfused_ms": unfused_s * 1000,
            "fused_ms": fused_s * 1000,
            "speedup": speedup,
        }

    median = statistics.median(speedup for *_, speedup in rows)
    table = (
        "scenario             unfused-ms  fused-ms  speedup\n"
        + "\n".join(
            f"{n:<20} {u:>10.1f}  {f:>8.1f}  {s:>6.2f}x"
            for n, u, f, s in rows
        )
        + f"\nmedian speedup: {median:.2f}x"
    )
    artifact_sink(
        "S6 — operator fusion: end-to-end datamerge speedup", table
    )
    bench_json_sink("BENCH_pipeline_fusion.json", "scenarios", payload)
    bench_json_sink(
        "BENCH_pipeline_fusion.json", "median_speedup", median
    )
    # the join scenario's barrier work (hash join + distinct) is shared
    # by both paths, so it asserts no-regression rather than a speedup;
    # the chain-dominated scenarios carry the 1.5x floor via the median
    for name, _, _, speedup in rows:
        assert speedup >= 0.9, f"{name}: fusion regressed to {speedup:.2f}x"
    assert median >= 1.5, f"median fusion speedup only {median:.2f}x"


def test_parallel_dispatch_preserved(bench_json_sink):
    """Fusion must not swallow the dispatcher: with latency-bound
    sources, a fused plan at parallelism=8 keeps the fan-out speedup
    over parallelism=1 (the parameterized-query stage still batches
    probes across worker threads)."""

    def build(parallelism: int) -> Mediator:
        scenario = build_scaled_scenario(32, seed=5, push_mode="needed")
        for name in ("whois", "cs"):
            inner = scenario.registry.resolve(name)
            scenario.registry.deregister(name)
            scenario.registry.register(SlowSource(inner, delay=0.005))
        return Mediator(
            "med",
            scenario.mediator.specification,
            scenario.registry,
            scenario.externals,
            push_mode="needed",
            register=False,
            fuse=True,
            parallelism=parallelism,
        )

    query = "S :- S:<cs_person {<rel 'student'>}>@med"
    sequential = build(1)
    parallel = build(8)
    # parallel scheduling may permute mediator oid assignment across
    # parallelism levels, so compare structurally (hash is structural)
    sequential_answers = sorted(hash(o) for o in sequential.query(query))
    parallel_answers = sorted(hash(o) for o in parallel.query(query))
    assert sequential_answers == parallel_answers
    assert parallel_answers  # non-trivial workload

    gc.collect()
    start = time.perf_counter()
    sequential.query(query)
    sequential_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel.query(query)
    parallel_s = time.perf_counter() - start
    speedup = sequential_s / parallel_s
    bench_json_sink(
        "BENCH_pipeline_fusion.json",
        "parallel_dispatch",
        {
            "sequential_ms": sequential_s * 1000,
            "parallel_ms": parallel_s * 1000,
            "speedup": speedup,
        },
    )
    assert speedup >= 2.0, (
        f"fused plan lost the dispatcher fan-out: {speedup:.2f}x"
    )


# ---------------------------------------------------------------------------
# Experiment S4 — object fusion via semantic object-ids (folded in from
# the former bench_fusion.py; see the naming note in the module
# docstring).  Section 2, "Other Features": semantic oids "provide a
# powerful mechanism for object fusion".  The bibliography scenario
# measures it: two sources with overlapping records fused into one
# view, versus the join-only MS1 style, which drops single-source
# records.  The fusion pass itself is also measured in isolation.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("papers", [20, 100, 400])
def test_fused_view_export(papers, benchmark):
    scenario = build_bibliography(papers=papers, overlap_fraction=0.5)
    view = benchmark(scenario.mediator.export)
    titles = [o.get("title") for o in view]
    assert len(titles) == len(set(titles))  # fused, not duplicated


def test_fusion_keeps_single_source_records(artifact_sink, benchmark):
    """The shape claim: fusion view ⊇ each source; join-only view ⊆ both."""
    scenario = build_bibliography(papers=60, overlap_fraction=0.4, seed=9)
    view_titles = {
        o.get("title")
        for o in benchmark.pedantic(
            scenario.mediator.export, rounds=1, iterations=1
        )
    }
    dept_titles = {row[0] for row in scenario.deptbib.database.table("paper")}
    web_titles = {o.get("title") for o in scenario.webbib.export()}
    assert dept_titles <= view_titles
    assert web_titles <= view_titles
    overlap = dept_titles & web_titles
    artifact_sink(
        "S4 — fusion coverage",
        f"deptbib: {len(dept_titles)} papers, webbib: {len(web_titles)},"
        f" overlap: {len(overlap)}\n"
        f"fused view: {len(view_titles)} (= union, each overlap fused to"
        f" one object)\n"
        f"a join-only view would contain just the {len(overlap)} overlap"
        f" records",
    )
    assert len(view_titles) == len(dept_titles | web_titles)


def _group(count, members_per_group):
    objects = []
    for g in range(count):
        for m in range(members_per_group):
            objects.append(
                OEMObject(
                    "rec",
                    [atom(f"f{m}", m)],
                    "set",
                    SemanticOid("rec", [g]),
                )
            )
    return objects


@pytest.mark.parametrize("groups,per", [(100, 2), (100, 8), (1000, 2)])
def test_fuse_pass_cost(groups, per, benchmark):
    objects = _group(groups, per)
    fused = benchmark(fuse_objects, objects)
    assert len(fused) == groups
    assert all(len(o.children) == per for o in fused)

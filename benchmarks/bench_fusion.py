"""Experiment S4 — object fusion via semantic object-ids.

Section 2, "Other Features": semantic oids "provide a powerful mechanism
for object fusion".  The bibliography scenario measures it: two sources
with overlapping records fused into one view, versus the join-only MS1
style, which drops single-source records.  The fusion pass itself is
also measured in isolation.

Naming note: this file measures **object** fusion (semantic-oid result
merging, :mod:`repro.mediator.fusion`).  Whole-plan **operator** fusion
(:mod:`repro.mediator.pipeline`) is measured by
``bench_pipeline_fusion.py`` and reported in
``BENCH_pipeline_fusion.json``.
"""

import pytest

from repro.datasets import build_bibliography
from repro.mediator import fuse_objects
from repro.oem import OEMObject, SemanticOid, atom


@pytest.mark.parametrize("papers", [20, 100, 400])
def test_fused_view_export(papers, benchmark):
    scenario = build_bibliography(papers=papers, overlap_fraction=0.5)
    view = benchmark(scenario.mediator.export)
    titles = [o.get("title") for o in view]
    assert len(titles) == len(set(titles))  # fused, not duplicated


def test_fusion_keeps_single_source_records(artifact_sink, benchmark):
    """The shape claim: fusion view ⊇ each source; join-only view ⊆ both."""
    scenario = build_bibliography(papers=60, overlap_fraction=0.4, seed=9)
    view_titles = {
        o.get("title")
        for o in benchmark.pedantic(
            scenario.mediator.export, rounds=1, iterations=1
        )
    }
    dept_titles = {row[0] for row in scenario.deptbib.database.table("paper")}
    web_titles = {o.get("title") for o in scenario.webbib.export()}
    assert dept_titles <= view_titles
    assert web_titles <= view_titles
    overlap = dept_titles & web_titles
    artifact_sink(
        "S4 — fusion coverage",
        f"deptbib: {len(dept_titles)} papers, webbib: {len(web_titles)},"
        f" overlap: {len(overlap)}\n"
        f"fused view: {len(view_titles)} (= union, each overlap fused to"
        f" one object)\n"
        f"a join-only view would contain just the {len(overlap)} overlap"
        f" records",
    )
    assert len(view_titles) == len(dept_titles | web_titles)


def _group(count, members_per_group):
    objects = []
    for g in range(count):
        for m in range(members_per_group):
            objects.append(
                OEMObject(
                    "rec",
                    [atom(f"f{m}", m)],
                    "set",
                    SemanticOid("rec", [g]),
                )
            )
    return objects


@pytest.mark.parametrize("groups,per", [(100, 2), (100, 8), (1000, 2)])
def test_fuse_pass_cost(groups, per, benchmark):
    objects = _group(groups, per)
    fused = benchmark(fuse_objects, objects)
    assert len(fused) == groups
    assert all(len(o.children) == per for o in fused)

"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_*.py`` module regenerates one artifact of the paper
(figure, rule, unifier, or plan) and measures the code path behind it.
Artifacts are printed to stdout (visible with ``pytest -s``) and
collected into ``benchmarks/artifacts.txt`` so EXPERIMENTS.md can quote
them verbatim.
"""

import datetime
import json
import os
import pathlib
import subprocess

import pytest

ARTIFACTS_PATH = pathlib.Path(__file__).parent / "artifacts.txt"
_written: set[str] = set()
_json_started: set[str] = set()


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _provenance() -> dict:
    """Who produced this report: git SHA + ISO timestamp."""
    return {
        "git_sha": _git_sha(),
        "generated_at": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
    }


@pytest.fixture(scope="session")
def artifact_sink():
    """Append named artifacts to benchmarks/artifacts.txt (once each)."""
    if not _written:
        ARTIFACTS_PATH.write_text("")

    def write(name: str, text: str) -> None:
        if name in _written:
            return
        _written.add(name)
        with ARTIFACTS_PATH.open("a") as handle:
            handle.write(f"===== {name} =====\n{text}\n\n")
        print(f"\n===== {name} =====\n{text}\n")

    return write


@pytest.fixture(scope="session")
def bench_json_sink():
    """Merge named sections into a machine-readable BENCH_*.json file.

    The first write to a file in a session starts it fresh; later
    writes merge their section in, so several tests can contribute to
    one report (e.g. ``BENCH_parallel.json``).  Every write re-stamps
    a ``_meta`` section with the producing git SHA and an ISO-8601
    UTC timestamp, so a checked-in report says exactly which commit
    produced it.  Writes are atomic
    (temp file + rename in the same directory), so a reader — or an
    interrupted run — never sees a half-written report.
    """

    def write(filename: str, section: str, payload) -> None:
        path = pathlib.Path(__file__).parent / filename
        if filename in _json_started and path.exists():
            data = json.loads(path.read_text())
        else:
            _json_started.add(filename)
            data = {}
        data[section] = payload
        data["_meta"] = _provenance()
        temp = path.with_name(path.name + f".tmp{os.getpid()}")
        temp.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )
        os.replace(temp, path)

    return write

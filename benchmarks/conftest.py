"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_*.py`` module regenerates one artifact of the paper
(figure, rule, unifier, or plan) and measures the code path behind it.
Artifacts are printed to stdout (visible with ``pytest -s``) and
collected into ``benchmarks/artifacts.txt`` so EXPERIMENTS.md can quote
them verbatim.
"""

import pathlib

import pytest

ARTIFACTS_PATH = pathlib.Path(__file__).parent / "artifacts.txt"
_written: set[str] = set()


@pytest.fixture(scope="session")
def artifact_sink():
    """Append named artifacts to benchmarks/artifacts.txt (once each)."""
    if not _written:
        ARTIFACTS_PATH.write_text("")

    def write(name: str, text: str) -> None:
        if name in _written:
            return
        _written.add(name)
        with ARTIFACTS_PATH.open("a") as handle:
            handle.write(f"===== {name} =====\n{text}\n\n")
        print(f"\n===== {name} =====\n{text}\n")

    return write

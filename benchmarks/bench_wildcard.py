"""Experiment S3 — wildcard (descendant) search cost.

Section 2, "Other Features": wildcards allow "searches for objects at
any level in the object structure ... Without appropriate index
structures, wildcard searches may be expensive".  We quantify that: a
descendant pattern ``{.. <leaf X>}`` against structures of growing
depth/size, versus a direct path pattern, versus the mediator's
materialization fallback for wildcard queries on views.
"""

import pytest

from repro.datasets import build_scenario, deep_object
from repro.msl import match_pattern, parse_pattern
from repro.oem import count_objects


@pytest.mark.parametrize("depth", [8, 64, 256])
def test_descendant_search_by_depth(depth, benchmark):
    """Chain structures: cost tracks the number of objects visited."""
    root = deep_object(depth, fanout=3)
    pattern = parse_pattern("<node {.. <leaf X>}>")

    def search():
        return list(match_pattern(pattern, root))

    results = benchmark(search)
    assert len(results) == 1
    assert results[0]["X"] == "x"


@pytest.mark.parametrize("fanout", [2, 8, 32])
def test_descendant_search_by_fanout(fanout, benchmark):
    root = deep_object(24, fanout=fanout)
    pattern = parse_pattern("<node {.. <leaf X>}>")

    def search():
        return list(match_pattern(pattern, root))

    results = benchmark(search)
    assert len(results) == 1


def test_indexed_lookup_beats_wildcard_scan(benchmark, artifact_sink):
    """"Without appropriate index structures, wildcard searches may be
    expensive": an indexed top-level lookup prunes to a handful of
    candidate objects, a descendant search walks the whole store."""
    import time

    from repro.datasets import record_forest
    from repro.msl import parse_rule
    from repro.oem import atom, obj
    from repro.wrappers import OEMStoreWrapper

    records = record_forest(2000, seed=4)
    # nest a tagged address under each record
    nested = [
        record.with_children(
            list(record.children)
            + [obj("address", atom("city", f"city_{index % 50}"))]
        )
        for index, record in enumerate(records)
    ]
    wrapper = OEMStoreWrapper("store", nested)

    direct_query = parse_rule("<hit N> :- <person {<name N> <dept 'dept_7'>}>")
    wildcard_query = parse_rule(
        "<hit N> :- <person {<name N> .. <city 'city_7'>}>"
    )

    start = time.perf_counter()
    for _ in range(10):
        wrapper.answer(direct_query)
    direct_time = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(10):
        wrapper.answer(wildcard_query)
    wildcard_time = time.perf_counter() - start

    artifact_sink(
        "S3 — indexed direct filter vs wildcard scan (2000 objects)",
        f"objects in store (incl. nested): "
        f"{count_objects(wrapper.export())}\n"
        f"indexed direct filter: {direct_time * 100:.3f} ms/op\n"
        f"wildcard '..' search:  {wildcard_time * 100:.3f} ms/op",
    )

    def run_direct():
        return wrapper.answer(direct_query)

    assert benchmark(run_direct)
    assert wildcard_time > direct_time


def test_compiled_descendant_search(benchmark, artifact_sink):
    """Compiled descendant items precompute the node walk per object;
    compare against the interpretive '..' search on a deep structure."""
    import time

    from repro.msl import compile_pattern

    root = deep_object(64, fanout=3)
    pattern = parse_pattern("<node {.. <leaf X>}>")
    compiled = compile_pattern(pattern)
    assert [e.key() for e in compiled.match(root)] == [
        e.key() for e in match_pattern(pattern, root)
    ]

    start = time.perf_counter()
    for _ in range(20):
        list(match_pattern(pattern, root))
    interp = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(20):
        compiled.match(root)
    fast = time.perf_counter() - start

    artifact_sink(
        "S3 — compiled vs interpretive descendant search (depth 64)",
        f"interpretive: {interp * 50:.3f} ms/op\n"
        f"compiled:     {fast * 50:.3f} ms/op"
        f" ({interp / fast:.2f}x)",
    )
    results = benchmark(lambda: compiled.match(root))
    assert len(results) == 1


def test_wildcard_query_on_mediator_falls_back(benchmark):
    """Wildcard queries against a mediator use view materialization."""
    scenario = build_scenario()
    query = "X :- X:<cs_person {.. <title T>}>@med"
    result = benchmark(scenario.mediator.answer, query)
    assert len(result) == 1

"""Experiment F3.6 — Figure 3.6: physical datamerge graph execution.

Regenerates the figure's walkthrough: the graph for logical rule Q3,
every node's flowing table (Qw result, extractor bindings, decomp
output, parameterized queries Qcs1/Qcs2, constructor output), and
measures graph execution node by node.
"""

import pytest

from repro.datasets import YEAR3_QUERY, build_scenario
from repro.mediator import ParameterizedQueryNode


@pytest.fixture(scope="module")
def traced_scenario():
    return build_scenario(push_mode="needed", trace=True)


def test_figure_3_6_artifact(traced_scenario, artifact_sink, benchmark):
    med = traced_scenario.mediator

    def run():
        return med.answer(YEAR3_QUERY)

    result = benchmark(run)
    assert len(result) == 1
    artifact_sink(
        "Figure 3.6 — physical datamerge graph (for the year-3 query)",
        med.explain(YEAR3_QUERY),
    )
    artifact_sink(
        "Figure 3.6 — node-by-node tables of the last execution",
        med.engine.render_trace(),
    )


def test_parameterized_queries_match_qcs(traced_scenario, artifact_sink, benchmark):
    """The concrete queries emitted to cs are the paper's Qcs1/Qcs2."""
    med = traced_scenario.mediator
    benchmark.pedantic(med.answer, args=(YEAR3_QUERY,), rounds=1, iterations=1)
    emitted = []
    for entry in med.last_context.trace:
        if isinstance(entry.node, ParameterizedQueryNode):
            parent_table = None
            # reconstruct the concrete queries from the node's input rows
            for previous in med.last_context.trace:
                if previous.node is entry.node.inputs[0]:
                    parent_table = previous.table
            assert parent_table is not None
            for row in parent_table.rows:
                emitted.append(
                    str(entry.node.instantiate(parent_table.row_dict(row)))
                )
    artifact_sink(
        "Section 3.1 — concrete parameterized queries sent to cs",
        "\n".join(emitted),
    )
    assert any("<student {" in q for q in emitted)
    assert any("'Naive'" in q for q in emitted)


def test_graph_execution_overhead(traced_scenario, benchmark):
    """Planning + execution for the two-rule program (no answer cache)."""
    med = traced_scenario.mediator
    program = med.expander.expand(
        __import__("repro.msl", fromlist=["parse_query"]).parse_query(
            YEAR3_QUERY
        )
    )

    def plan_and_execute():
        plan = med.optimizer.plan_program(program)
        from repro.mediator import DatamergeEngine

        return DatamergeEngine().execute_to_objects(plan, med._context())

    objects = benchmark(plan_and_execute)
    assert len(objects) == 1

"""Experiment §3.5a — limited source capabilities and compensation.

"The source whois may not be able to evaluate the condition on 'year'":
the optimizer must relax the shipped query and filter at the mediator.
The benchmark compares a fully-capable whois against a limited one on
the same queries: identical answers, more objects on the wire and more
mediator-side work for the limited source.
"""

import pytest

from repro.datasets import (
    WHOIS_LIMITED_CAPABILITY,
    build_scaled_scenario,
)
from repro.oem import structural_key

#: An office shared by several whois persons (index % 10 == 4).
QUERY = "S :- S:<cs_person {<office 'Gates 4'>}>@med"


def build(capability):
    return build_scaled_scenario(
        200, push_mode="needed", whois_capability=capability
    )


def test_full_capability(benchmark):
    scenario = build(None)
    result = benchmark(scenario.mediator.answer, QUERY)
    assert result


def test_limited_capability_with_compensation(benchmark):
    scenario = build(WHOIS_LIMITED_CAPABILITY)
    result = benchmark(scenario.mediator.answer, QUERY)
    assert result


def test_answers_identical_and_wire_cost_differs(artifact_sink, benchmark):
    def setup_pair():
        return build(None), build(WHOIS_LIMITED_CAPABILITY)

    full, limited = benchmark.pedantic(setup_pair, rounds=1, iterations=1)
    full_answer = full.mediator.answer(QUERY)
    limited_answer = limited.mediator.answer(QUERY)
    assert sorted(repr(structural_key(o)) for o in full_answer) == sorted(
        repr(structural_key(o)) for o in limited_answer
    )
    full_shipped = full.mediator.last_context.objects_received["whois"]
    limited_shipped = limited.mediator.last_context.objects_received["whois"]
    assert limited_shipped > full_shipped
    artifact_sink(
        "S3.5a — capability compensation",
        f"answers: {len(full_answer)} (identical)\n"
        f"objects shipped from whois — full capability: {full_shipped},"
        f" limited: {limited_shipped}",
    )

"""Experiment §3.5b — join order and execution strategy.

Section 3.5 discusses the optimizer's choices: the ad-hoc heuristic
("the outer patterns are the ones that have the greatest number of
conditions"), a statistics database built from feedback, and the
implicit alternative of not bind-joining at all.  This benchmark races
the three strategies on a selective point query and on an unselective
full-view query — the shape the paper predicts:

* **bind-join + good order** wins on selective queries (few
  parameterized probes);
* **fetch_all** is competitive (even ahead) when the query touches
  everything anyway, because it avoids per-binding query overhead;
* the **statistics** strategy converges to the heuristic's order once
  it has observed the sources.
"""

import pytest

from repro.datasets import build_scaled_scenario

PEOPLE = 200


def scenario_for(strategy):
    return build_scaled_scenario(PEOPLE, push_mode="needed", strategy=strategy)


def point_query(scenario):
    name = scenario.whois.export()[PEOPLE // 3].get("name")
    return f"X :- X:<cs_person {{<name '{name}'>}}>@med"


FULL_QUERY = "X :- X:<cs_person {<name N>}>@med"


@pytest.mark.parametrize("strategy", ["heuristic", "statistics", "fetch_all"])
def test_point_query(strategy, benchmark):
    scenario = scenario_for(strategy)
    query = point_query(scenario)
    result = benchmark(scenario.mediator.answer, query)
    assert len(result) <= 1


@pytest.mark.parametrize("strategy", ["heuristic", "fetch_all"])
def test_full_view_query(strategy, benchmark):
    scenario = scenario_for(strategy)
    result = benchmark(scenario.mediator.answer, FULL_QUERY)
    assert len(result) > PEOPLE * 0.5


def test_query_counts_tell_the_story(artifact_sink, benchmark):
    def series():
        rows = []
        for strategy in ("heuristic", "fetch_all"):
            scenario = scenario_for(strategy)
            scenario.mediator.answer(point_query(scenario))
            context = scenario.mediator.last_context
            rows.append(
                (
                    strategy,
                    context.total_queries,
                    context.total_objects,
                )
            )
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    table = "strategy    queries  objects-shipped\n" + "\n".join(
        f"{s:<10} {q:>8} {o:>16}" for s, q, o in rows
    )
    artifact_sink("S3.5b — point-query cost by strategy", table)
    by_name = dict((s, (q, o)) for s, q, o in rows)
    # bind-join sends more queries but ships far fewer objects
    assert by_name["heuristic"][1] < by_name["fetch_all"][1]


def test_statistics_feedback_converges(benchmark):
    """After a few answered queries the statistics order stabilises."""
    scenario = scenario_for("statistics")
    warmup = point_query(scenario)
    for _ in range(3):
        scenario.mediator.answer(warmup)
    assert scenario.mediator.statistics.has_observations("whois", "person")

    result = benchmark(scenario.mediator.answer, warmup)
    assert len(result) <= 1

"""Experiment F1.1 — Figure 1.1: the layered TSIMMIS architecture.

Mediators are Sources, so views stack: application → mediator →
mediator → wrappers.  This benchmark measures the per-layer cost of
stacking (each layer re-expands, re-plans, and re-ships queries) and
the dedup ablation (footnote 9: the authors' engine lacked duplicate
elimination; ours toggles it).
"""

import pytest

from repro.datasets import build_scaled_scenario
from repro.mediator import Mediator

PEOPLE = 100


@pytest.fixture(scope="module")
def stacked():
    scenario = build_scaled_scenario(PEOPLE, push_mode="needed")
    Mediator(
        "summary",
        "<staff {<who N> <status R>}> :- <cs_person {<name N> <rel R>}>@med",
        scenario.registry,
    )
    Mediator(
        "top",
        "<entry {<n N2>}> :- <staff {<who N2>}>@summary",
        scenario.registry,
    )
    return scenario


def query_name(scenario):
    return scenario.whois.export()[PEOPLE // 2].get("name")


def test_one_layer(stacked, benchmark):
    name = query_name(stacked)
    result = benchmark(
        stacked.mediator.answer,
        f"X :- X:<cs_person {{<name '{name}'>}}>@med",
    )
    assert len(result) <= 1


def test_two_layers(stacked, benchmark):
    name = query_name(stacked)
    summary = stacked.registry.resolve("summary")
    result = benchmark(
        summary.answer, f"X :- X:<staff {{<who '{name}'>}}>@summary"
    )
    assert len(result) <= 1


def test_three_layers(stacked, benchmark):
    name = query_name(stacked)
    top = stacked.registry.resolve("top")
    result = benchmark(top.answer, f"X :- X:<entry {{<n '{name}'>}}>@top")
    assert len(result) <= 1


def test_layer_overhead_artifact(stacked, artifact_sink, benchmark):
    import time

    name = query_name(stacked)
    queries = [
        ("1 layer (med)", "med", f"X :- X:<cs_person {{<name '{name}'>}}>@med"),
        ("2 layers (summary)", "summary", f"X :- X:<staff {{<who '{name}'>}}>@summary"),
        ("3 layers (top)", "top", f"X :- X:<entry {{<n '{name}'>}}>@top"),
    ]
    def series():
        rows = []
        for label, source, query in queries:
            mediator = stacked.registry.resolve(source)
            start = time.perf_counter()
            for _ in range(5):
                mediator.answer(query)
            rows.append((label, (time.perf_counter() - start) / 5 * 1000))
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    table = "\n".join(f"{label:<22} {ms:8.2f} ms" for label, ms in rows)
    artifact_sink("F1.1 — cost of stacking mediators (point query)", table)
    assert rows[-1][1] >= rows[0][1] * 0.5  # sanity: numbers are real


class TestDedupAblation:
    """Footnote 9: duplicate elimination on/off."""

    def build(self, deduplicate):
        scenario = build_scaled_scenario(PEOPLE, push_mode="complete")
        scenario.mediator.optimizer.deduplicate = deduplicate
        return scenario

    def test_with_dedup(self, benchmark):
        scenario = self.build(True)
        result = benchmark(
            scenario.mediator.answer, "X :- X:<cs_person {<rel 'student'>}>@med"
        )
        keys = [str(o) for o in result]
        assert len(keys) == len(set(keys))

    def test_without_dedup(self, benchmark, artifact_sink):
        scenario = self.build(False)
        result = benchmark(
            scenario.mediator.answer, "X :- X:<cs_person {<rel 'student'>}>@med"
        )
        with_dedup = self.build(True).mediator.answer(
            "X :- X:<cs_person {<rel 'student'>}>@med"
        )
        artifact_sink(
            "Footnote 9 — duplicate elimination ablation",
            f"results with dedup: {len(with_dedup)}, without:"
            f" {len(result)} (complete push mode multiplies rules, so"
            f" dedup-off returns duplicated objects)",
        )
        assert len(result) >= len(with_dedup)

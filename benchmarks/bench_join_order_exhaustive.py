"""Extension experiment — §3.5 end to end: heuristic vs informed cost.

The paper's ad-hoc heuristic counts conditions; with the three-source
campus scenario, the ``hr`` pattern (dept 'eng', ~50% selective) ties
with the ``badges`` pattern (level 'gold', ~2% selective), so counting
cannot pick the right outer pattern.  The ``exhaustive`` strategy,
informed by sampled value-level selectivities, starts from the gold
badges and bind-joins outward — an order-of-magnitude fewer queries.
"""

import pytest

from repro.datasets import build_campus_scenario

PEOPLE = 300


def informed_exhaustive():
    scenario = build_campus_scenario(PEOPLE, strategy="exhaustive")
    for name in ("hr", "badges", "parking"):
        scenario.mediator.statistics.sample_source(
            scenario.registry.resolve(name)
        )
    return scenario


def test_heuristic_order(benchmark):
    scenario = build_campus_scenario(PEOPLE, strategy="heuristic")
    view = benchmark(scenario.mediator.export)
    assert len(view) >= 1


def test_exhaustive_informed_order(benchmark):
    scenario = informed_exhaustive()
    view = benchmark(scenario.mediator.export)
    assert len(view) >= 1


def test_cost_comparison(artifact_sink, benchmark):
    def series():
        rows = []
        heuristic = build_campus_scenario(PEOPLE, strategy="heuristic")
        heuristic.mediator.export()
        rows.append(
            (
                "heuristic (condition count)",
                heuristic.mediator.last_context.total_queries,
                heuristic.mediator.last_context.total_objects,
            )
        )
        exhaustive = informed_exhaustive()
        exhaustive.mediator.export()
        rows.append(
            (
                "exhaustive + sampled stats",
                exhaustive.mediator.last_context.total_queries,
                exhaustive.mediator.last_context.total_objects,
            )
        )
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    table = "strategy                      queries  objects\n" + "\n".join(
        f"{s:<29} {q:>7} {o:>8}" for s, q, o in rows
    )
    artifact_sink(
        "S3.5 — join order: heuristic vs informed exhaustive"
        " (3-source campus)",
        table,
    )
    assert rows[1][1] < rows[0][1] / 3

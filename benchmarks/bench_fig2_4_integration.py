"""Experiment F2.4 — Figure 2.4: the integrated ``cs_person`` object.

Regenerates the figure (the med view's object for Joe Chung, combining
both sources' information) and measures the end-to-end MSI pipeline on
the paper's scenario and on scaled variants.
"""

import pytest

from repro.datasets import (
    JOE_CHUNG_QUERY,
    build_scaled_scenario,
    build_scenario,
)
from repro.oem import to_text


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(push_mode="needed")


def test_figure_2_4_artifact(scenario, artifact_sink, benchmark):
    result = benchmark(scenario.mediator.answer, JOE_CHUNG_QUERY)
    artifact_sink(
        "Figure 2.4 — the integrated cs_person object for Joe Chung",
        to_text(result),
    )
    (joe,) = result
    assert [c.label for c in joe.children] == [
        "name", "rel", "e_mail", "title", "reports_to",
    ]


def test_full_view_export(scenario, benchmark):
    view = benchmark(scenario.mediator.export)
    assert len(view) == 2


@pytest.mark.parametrize("people", [50, 100, 200])
def test_point_query_at_scale(people, benchmark):
    scenario = build_scaled_scenario(people, push_mode="needed")
    target = scenario.whois.export()[people // 2].get("name")
    query = f"X :- X:<cs_person {{<name '{target}'>}}>@med"
    result = benchmark(scenario.mediator.answer, query)
    assert len(result) <= 1


@pytest.mark.parametrize("people", [50, 100, 200])
def test_full_view_at_scale(people, benchmark):
    scenario = build_scaled_scenario(people, push_mode="needed")
    view = benchmark(scenario.mediator.export)
    # ~90% of people appear in both sources
    assert len(view) >= people * 0.7

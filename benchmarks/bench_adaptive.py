"""Experiment A1 — the telemetry→optimizer feedback loop pays for itself.

Two promises the adaptive-statistics subsystem must keep
(docs/observability.md):

* **adaptivity** — on a skewed two-source join (a 400-object source
  behind a slow per-call wire vs a 4-object one), cold statistics
  order the join as written and ship one probe per huge-side row;
  after one observed run, the persisted statistics snapshot
  (``--stats-out`` → ``--stats-in``) flips the join order and the warm
  mediator answers at least 1.2x faster.  Answers are asserted equal
  *before* anything is timed;
* **cost** — the always-on observation hooks (q-error tracking,
  misestimate detection) must stay within noise when nothing is
  analyzing: the median paired ratio of the default engine against the
  same engine with its ``observe_node`` hook stubbed out must be
  <= 1.02, measured with :mod:`bench_obs`'s palindrome-cycle method.

Everything is deterministic: fixed datasets, no faults, no cache; the
skew comes from call *counts* (400 probes vs 4) across a uniform
per-call sleep, so the 1.2x floor is structural, not load-dependent.
"""

import gc
import time

from repro.datasets import build_scaled_scenario
from repro.external.registry import default_registry
from repro.mediator import Mediator
from repro.mediator.engine import ExecutionContext
from repro.oem import structural_key
from repro.oem.builders import atom, obj
from repro.wrappers import OEMStoreWrapper, SourceRegistry

HUGE_ROWS = 400
TINY_ROWS = 4
CALL_SLEEP = 0.0002
SPEC = (
    "<pair {<k K> <b B> <t T>}> :-"
    " <big {<k K> <payload B>}>@huge"
    " AND <small {<k K> <note T>}>@tiny ;"
)
QUERY = "P :- P:<pair {}>@med"

OVERHEAD_PEOPLE = 50
OVERHEAD_SEGMENTS = 4
OVERHEAD_CYCLES = 10
OVERHEAD_WARMUP = 8
FANOUT_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"
JSON_FILE = "BENCH_adaptive.json"


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


class SlowWire(OEMStoreWrapper):
    """An OEM store whose every answer pays a fixed wire delay.

    The delay models per-call latency; it is identical for both
    sources, so the only thing that separates the two join orders is
    how many calls each one ships.
    """

    def answer(self, query):
        time.sleep(CALL_SLEEP)
        return super().answer(query)


def _skewed_registry():
    registry = SourceRegistry()
    registry.register(
        SlowWire(
            "huge",
            [
                obj("big", atom("k", i), atom("payload", f"p{i}"))
                for i in range(HUGE_ROWS)
            ],
        )
    )
    registry.register(
        SlowWire(
            "tiny",
            [
                obj("small", atom("k", i), atom("note", f"n{i}"))
                for i in range(TINY_ROWS)
            ],
        )
    )
    return registry


def _skewed_mediator(registry):
    return Mediator(
        "med",
        SPEC,
        registry,
        default_registry(),
        strategy="statistics",
        register=False,
    )


def _first_scan_source(mediator):
    """The source of the first leaf the plan scans (join-order probe)."""
    report = mediator.explain_analyze(QUERY)
    for node in report.to_dict()["nodes"]:
        if node["estimate"] is not None:
            return node["estimate"]["source"], report
    raise AssertionError("no estimated leaf in the analyze report")


def test_warm_statistics_flip_join_order(artifact_sink, bench_json_sink):
    """Cold vs statistics-warmed join order on the skewed scenario."""
    registry = _skewed_registry()

    # -- correctness first: both orders must mean the same query
    cold_probe = _skewed_mediator(registry)
    cold_source, cold_report = _first_scan_source(cold_probe)
    snapshot = cold_probe.statistics_snapshot()  # warmed by the run

    warm_probe = _skewed_mediator(registry)
    warm_probe.restore_statistics(snapshot)
    warm_source, warm_report = _first_scan_source(warm_probe)

    assert canonical(cold_report.objects) == canonical(warm_report.objects)
    assert len(cold_report.objects) == TINY_ROWS
    assert cold_source == "huge", (
        f"cold statistics should keep the written order, got {cold_source}"
    )
    assert warm_source == "tiny", (
        f"warm statistics should flip the join order, got {warm_source}"
    )

    # -- then timing: fresh mediators, paired cold/warm cycles.  The
    # cold mediator's statistics are cleared after every answer (it
    # would warm itself up from its own feedback otherwise); the warm
    # one re-restores the snapshot so both stay in their steady state.
    cold = _skewed_mediator(registry)
    warm = _skewed_mediator(registry)
    warm.restore_statistics(snapshot)
    ratios = []
    cold_ms = warm_ms = None
    gc.collect()
    gc.disable()
    try:
        for _ in range(5):
            timed = {"cold": 0.0, "warm": 0.0}
            for key in ("cold", "warm", "warm", "cold"):
                mediator = cold if key == "cold" else warm
                start = time.perf_counter()
                mediator.answer(QUERY)
                timed[key] += time.perf_counter() - start
                if key == "cold":
                    cold.statistics.clear()
            gc.collect()
            ratios.append(timed["cold"] / timed["warm"])
            cold_ms = timed["cold"] / 2.0 * 1e3
            warm_ms = timed["warm"] / 2.0 * 1e3
    finally:
        gc.enable()
    speedup = _median(ratios)

    artifact_sink(
        "adaptive statistics flip a skewed join (cold vs warm)",
        f"huge={HUGE_ROWS} rows, tiny={TINY_ROWS} rows,"
        f" wire delay {CALL_SLEEP * 1e3:.1f}ms/call\n"
        f"cold order : {cold_source} first"
        f" -> {HUGE_ROWS} bind-join probes, {cold_ms:8.2f} ms/answer\n"
        f"warm order : {warm_source} first"
        f" -> {TINY_ROWS} bind-join probes, {warm_ms:8.2f} ms/answer\n"
        f"median paired speedup: x{speedup:.2f} (target >= 1.2)",
    )
    bench_json_sink(
        JSON_FILE,
        "join_order",
        {
            "huge_rows": HUGE_ROWS,
            "tiny_rows": TINY_ROWS,
            "call_sleep_ms": CALL_SLEEP * 1e3,
            "query": QUERY,
            "cold_first_source": cold_source,
            "warm_first_source": warm_source,
            "cold_ms": round(cold_ms, 3),
            "warm_ms": round(warm_ms, 3),
            "median_paired_speedup": round(speedup, 3),
        },
    )

    assert speedup >= 1.2, (
        f"warm statistics speedup x{speedup:.2f}, expected >= 1.2"
    )


def _overhead_segment(scenario):
    """Palindrome-paired ratios: default engine vs stubbed hooks.

    ``bare`` runs with ``ExecutionContext.observe_node`` replaced by a
    no-op for the duration of its timed slice — the engine minus this
    PR's observation work; ``off`` is the shipped default (hooks live,
    no analyze attached); ``analyze`` runs ``explain_analyze``.
    """

    def build(**kwargs):
        return Mediator(
            "med",
            scenario.mediator.specification,
            scenario.registry,
            scenario.externals,
            push_mode="needed",
            register=False,
            **kwargs,
        )

    configs = {"bare": build(), "off": build(), "analyze": build()}
    for mediator in configs.values():
        for _ in range(OVERHEAD_WARMUP):
            mediator.answer(FANOUT_QUERY)

    original = ExecutionContext.observe_node
    stub = lambda self, node, rows_in, rows_out, seconds, latency=0.0: None
    order = ["bare", "off", "analyze", "analyze", "off", "bare"]
    ratios = []
    gc.collect()
    gc.disable()
    try:
        for _ in range(OVERHEAD_CYCLES):
            timed = dict.fromkeys(configs, 0.0)
            for key in order:
                mediator = configs[key]
                if key == "bare":
                    ExecutionContext.observe_node = stub
                try:
                    start = time.perf_counter()
                    if key == "analyze":
                        mediator.explain_analyze(FANOUT_QUERY)
                    else:
                        mediator.answer(FANOUT_QUERY)
                    timed[key] += time.perf_counter() - start
                finally:
                    ExecutionContext.observe_node = original
            gc.collect()
            ratios.append(
                (
                    timed["off"] / timed["bare"],
                    timed["analyze"] / timed["bare"],
                    timed["bare"] / 2.0,
                )
            )
    finally:
        gc.enable()
        ExecutionContext.observe_node = original
    return ratios


def test_analyze_off_overhead_within_noise(
    artifact_sink, bench_json_sink, benchmark
):
    """The always-on hooks cost <= 2% when nothing is analyzing."""
    scenario = build_scaled_scenario(
        OVERHEAD_PEOPLE, seed=1996, push_mode="needed"
    )
    samples = []
    for _ in range(OVERHEAD_SEGMENTS):
        samples.extend(_overhead_segment(scenario))
    off_ratio = _median([s[0] for s in samples])
    analyze_ratio = _median([s[1] for s in samples])
    bare_ms = min(s[2] for s in samples) * 1e3

    artifact_sink(
        "plan-observability overhead (scaled scenario)",
        f"people={OVERHEAD_PEOPLE} segments={OVERHEAD_SEGMENTS}"
        f" cycles={OVERHEAD_CYCLES}\n"
        f"hooks stubbed     : {bare_ms:8.3f} ms/answer (baseline)\n"
        f"analyze off       : x{off_ratio:.3f}  (target <= 1.02)\n"
        f"explain analyze   : x{analyze_ratio:.3f}  (informational)",
    )
    bench_json_sink(
        JSON_FILE,
        "overhead",
        {
            "people": OVERHEAD_PEOPLE,
            "segments": OVERHEAD_SEGMENTS,
            "cycles": OVERHEAD_CYCLES,
            "query": FANOUT_QUERY,
            "baseline_ms": round(bare_ms, 4),
            "off_median_paired_ratio": round(off_ratio, 4),
            "analyze_median_paired_ratio": round(analyze_ratio, 4),
        },
    )

    result = benchmark(
        Mediator(
            "med",
            scenario.mediator.specification,
            scenario.registry,
            scenario.externals,
            push_mode="needed",
            register=False,
        ).answer,
        FANOUT_QUERY,
    )
    assert result
    assert off_ratio <= 1.02, (
        f"analyze-off hook overhead x{off_ratio:.3f}, expected within noise"
    )

"""Extension experiment — footnote 1: schema facts prune dead rules.

The paper: regular structure "could be exported as additional facts
about this source".  When the relational wrapper exports its catalog as
facts, the optimizer prunes logical rules that require structure the
source can never have — here, the τ-style rule pushing a whois-only
field (``office``) toward ``cs``, which otherwise triggers one
parameterized query *per binding*.
"""

import pytest

from repro.datasets import build_scaled_scenario

QUERY = "S :- S:<cs_person {<office 'Gates 4'>}>@med"
PEOPLE = 200


def build(prune: bool):
    scenario = build_scaled_scenario(PEOPLE, push_mode="needed")
    scenario.mediator.optimizer.prune_with_facts = prune
    return scenario


def test_with_fact_pruning(benchmark):
    scenario = build(True)
    result = benchmark(scenario.mediator.answer, QUERY)
    assert result


def test_without_fact_pruning(benchmark):
    scenario = build(False)
    result = benchmark(scenario.mediator.answer, QUERY)
    assert result


def test_pruning_saves_queries(artifact_sink, benchmark):
    def series():
        rows = []
        for prune in (True, False):
            scenario = build(prune)
            answers = scenario.mediator.answer(QUERY)
            context = scenario.mediator.last_context
            rows.append(
                (
                    "facts-pruned" if prune else "no-pruning",
                    len(answers),
                    scenario.mediator.optimizer.rules_pruned,
                    context.total_queries,
                    context.total_objects,
                )
            )
        return rows

    rows = benchmark.pedantic(series, rounds=1, iterations=1)
    table = (
        "mode          answers  rules-pruned  queries  objects\n"
        + "\n".join(
            f"{m:<13} {a:>7} {p:>13} {q:>8} {o:>8}"
            for m, a, p, q, o in rows
        )
    )
    artifact_sink("Footnote 1 — schema facts prune dead rules", table)
    by_mode = {m: (q, o) for m, a, p, q, o in rows}
    assert rows[0][1] == rows[1][1]  # same answers
    assert by_mode["facts-pruned"][0] < by_mode["no-pruning"][0] / 5

"""Experiment F2.5 — Figure 2.5: the three-stage MSI pipeline.

The figure decomposes query processing into (1) View Expander &
Algebraic Optimizer, (2) cost-based optimizer, (3) datamerge engine.
This benchmark times each stage in isolation on the paper's query Q1,
demonstrating where the work goes: expansion and planning are
microseconds of symbol pushing; execution dominates because it talks to
the sources.
"""

import pytest

from repro.datasets import JOE_CHUNG_QUERY, build_scaled_scenario, build_scenario
from repro.mediator import DatamergeEngine
from repro.msl import parse_query


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(push_mode="needed")


@pytest.fixture(scope="module")
def query():
    return parse_query(JOE_CHUNG_QUERY)


def test_stage1_view_expansion(scenario, query, benchmark, artifact_sink):
    program = benchmark(scenario.mediator.expander.expand, query)
    artifact_sink(
        "Figure 2.5 stage 1 — logical datamerge program for Q1",
        str(program),
    )
    assert len(program) == 1


def test_stage2_cost_based_optimizer(scenario, query, benchmark, artifact_sink):
    program = scenario.mediator.expander.expand(query)
    plan = benchmark(scenario.mediator.optimizer.plan_program, program)
    artifact_sink(
        "Figure 2.5 stage 2 — physical datamerge graph for Q1",
        plan.describe(),
    )
    assert len(plan.nodes()) == 6


def test_stage3_datamerge_engine(scenario, query, benchmark):
    program = scenario.mediator.expander.expand(query)
    plan = scenario.mediator.optimizer.plan_program(program)
    engine = DatamergeEngine()

    def run():
        return engine.execute_to_objects(plan, scenario.mediator._context())

    objects = benchmark(run)
    assert len(objects) == 1


def test_stage3_dominates_at_scale(benchmark):
    """At 200 people the engine stage is where the time goes."""
    import time

    scenario = build_scaled_scenario(200, push_mode="needed")
    query = parse_query("X :- X:<cs_person {<rel 'student'>}>@med")

    def pipeline():
        start = time.perf_counter()
        program = scenario.mediator.expander.expand(query)
        plan = scenario.mediator.optimizer.plan_program(program)
        planned = time.perf_counter()
        engine = DatamergeEngine()
        engine.execute_to_objects(plan, scenario.mediator._context())
        executed = time.perf_counter()
        return planned - start, executed - planned

    plan_time, execute_time = benchmark(pipeline)
    assert execute_time > plan_time

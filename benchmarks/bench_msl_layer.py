"""Microbenchmarks of the MSL substrate itself.

Not a paper artifact — these pin the costs of the layers everything else
is built on: tokenizing/parsing MSL text, matching patterns against OEM
structures (with and without Rest variables and join variables), and
OEM text round-trips.  Useful for catching algorithmic regressions in
the matcher's backtracking.
"""

import pytest

from repro.datasets import MS1, record_forest
from repro.msl import match_all, parse_pattern, parse_specification
from repro.oem import parse_oem, to_text


def test_parse_ms1(benchmark):
    spec = benchmark(parse_specification, MS1)
    assert len(spec.rules) == 1
    assert len(spec.externals) == 2


def test_parse_large_specification(benchmark):
    text = " ; ".join(
        f"<v{i} {{<a A> <b B> | R}}> :- <s{i} {{<a A> <b B> | R}}>@src{i}"
        for i in range(100)
    )
    spec = benchmark(parse_specification, text)
    assert len(spec.rules) == 100


@pytest.fixture(scope="module")
def forest():
    return record_forest(1000, seed=3, irregular_fraction=0.2)


def test_match_constant_filter(forest, benchmark):
    pattern = parse_pattern("<person {<dept 'dept_10'>}>")
    results = benchmark(match_all, pattern, forest)
    assert isinstance(results, list)


def test_match_with_rest(forest, benchmark):
    pattern = parse_pattern("<person {<name N> | Rest}>")
    results = benchmark(match_all, pattern, forest)
    assert results


def test_match_with_join_variable(benchmark):
    # objects where two fields must agree: exercises binding conflicts
    from repro.oem import atom, obj

    data = [
        obj("rec", atom("a", i % 5), atom("b", (i + 1) % 5))
        for i in range(500)
    ]
    pattern = parse_pattern("<rec {<a X> <b X>}>")
    results = benchmark(match_all, pattern, data)
    assert len(results) == 0  # a == b never holds: i%5 != (i+1)%5


def test_match_permutation_heavy(benchmark):
    """Many same-label children: the injective-assignment worst case."""
    from repro.oem import atom, obj

    wide = obj("rec", *[atom("tag", i) for i in range(9)])
    pattern = parse_pattern("<rec {<tag X> <tag Y> <tag Z>}>")
    results = benchmark(match_all, pattern, [wide])
    assert len(results) == 9 * 8 * 7


def test_compiled_matcher_speedup(forest, artifact_sink):
    """The compiled backend against the interpretive matcher on this
    module's workload shapes (see bench_compile.py for the full sweep)."""
    import time

    from repro.msl import compile_pattern

    rows = []
    for name, text in [
        ("constant filter", "<person {<dept 'dept_10'>}>"),
        ("rest variable", "<person {<name N> | Rest}>"),
    ]:
        pattern = parse_pattern(text)
        compiled = compile_pattern(pattern)

        start = time.perf_counter()
        for _ in range(5):
            match_all(pattern, forest)
        interp = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(5):
            compiled.match_all(forest)
        fast = time.perf_counter() - start
        rows.append((name, interp / fast))

    artifact_sink(
        "MSL layer — compiled matcher speedup (1000 objects)",
        "\n".join(f"{name}: {speedup:.2f}x" for name, speedup in rows),
    )
    assert all(speedup > 1.0 for _, speedup in rows)


def test_oem_roundtrip(forest, benchmark):
    text = to_text(forest)

    def roundtrip():
        return parse_oem(text)

    parsed = benchmark(roundtrip)
    assert len(parsed) == len(forest)

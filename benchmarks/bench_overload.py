"""Experiment O1 — admission control under 4x sustained overload.

The serving question: what happens when queries arrive *faster than
the mediator can finish them*?  Sources here are contended — each
concurrent caller slows every other caller down (the shape of a shared
backend: connection pools, buffer cache, CPU) — so capacity is real:
push harder and per-call latency rises for everyone.

* **Without admission control** the storm lands directly on the
  sources: dozens of queries execute at once, every source call slows
  down proportionally, and every query's latency inflates together —
  the classic congestion collapse where p99 is unbounded by anything
  except the storm size, and deadline budgets blow through.
* **With admission control** at the measured-capacity concurrency, the
  same storm yields flat goodput: admitted queries run at uncontended
  speed and finish inside their deadline; the excess is shed *at the
  gate* with structured rejections (queue depth + retry-after) instead
  of degrading everyone.

Assertions (the acceptance bar for PR 7):

* goodput (admitted-and-completed-in-deadline QPS) at 4x overload
  stays within 20% of measured capacity;
* zero admitted queries miss their end-to-end deadline budget (queue
  wait is charged against it; a small grace absorbs scheduler jitter
  and the one in-flight source call the governor cannot interrupt);
* accounting balances exactly: submitted == completed + shed, and the
  sheds are structured ``QueryRejected`` values;
* the no-admission baseline demonstrably collapses on the same storm:
  deadline violations, or a p99 far above the admitted p99.

Numbers land in ``benchmarks/BENCH_overload.json`` and the artifacts
file quoted by EXPERIMENTS.md.
"""

import threading
import time

from repro.datasets import build_scaled_scenario
from repro.governor.budget import QueryBudget
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.serving import AdmissionConfig, QueryRejected
from repro.wrappers.base import Source

PEOPLE = 12
BASE_LATENCY = 0.004     # uncontended per-call seconds (really slept)
CONTENTION = 0.80        # extra latency fraction per concurrent caller
MAX_CONCURRENT = 4       # the admission gate's in-flight ceiling
QUEUE_DEPTH = 8
DEADLINE = 0.8           # per-query end-to-end budget (seconds)
GRACE = 0.15             # jitter + one uninterruptible in-flight call
OVERLOAD = 4.0           # storm arrival rate as a multiple of capacity
CLIENTS = 32
QUERIES_PER_CLIENT = 4
CAPACITY_QUERIES = 32    # closed-loop queries for the capacity probe
QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"
JSON_FILE = "BENCH_overload.json"


class _ContendedSource(Source):
    """A source whose latency grows with concurrent callers.

    Real shared backends degrade under fan-in; this models that
    directly: each call sleeps ``BASE_LATENCY * (1 + CONTENTION *
    (active - 1))``, where ``active`` counts calls currently inside
    the source.  One caller sees the base latency; forty see ~12x it.
    """

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self._active = 0
        self._lock = threading.Lock()
        self.peak_active = 0

    def _contended(self, thunk):
        with self._lock:
            self._active += 1
            active = self._active
            self.peak_active = max(self.peak_active, active)
        try:
            time.sleep(BASE_LATENCY * (1.0 + CONTENTION * (active - 1)))
            return thunk()
        finally:
            with self._lock:
                self._active -= 1

    def answer(self, query):
        return self._contended(lambda: self._inner.answer(query))

    def export(self):
        return self._contended(self._inner.export)

    @property
    def capability(self):
        return self._inner.capability

    @property
    def schema_facts(self):
        return self._inner.schema_facts


def _canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def _percentile(samples, quantile):
    ordered = sorted(samples)
    rank = max(1, -(-int(quantile * 100) * len(ordered) // 100))
    return ordered[min(rank, len(ordered)) - 1]


def _scenario(seed=1996):
    scenario = build_scaled_scenario(PEOPLE, seed=seed, push_mode="needed")
    contended = {}
    for name in ("whois", "cs"):
        inner = scenario.registry.resolve(name)
        scenario.registry.deregister(name)
        source = _ContendedSource(inner)
        contended[name] = source
        scenario.registry.register(source)
    return scenario, contended


def _mediator(scenario, admission):
    kwargs = {}
    if admission:
        kwargs["admission"] = AdmissionConfig(
            max_concurrent=MAX_CONCURRENT,
            max_queue_depth=QUEUE_DEPTH,
            adaptive=True,
        )
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        push_mode="needed",
        register=False,
        # parallelism=1: source calls run inline on the querying
        # thread, so source fan-in == concurrent queries.  A shared
        # dispatcher pool would itself bound fan-in (an accidental
        # bulkhead) and mask the baseline's collapse.
        parallelism=1,
        budget=QueryBudget(deadline=DEADLINE),
        budget_mode="truncate",
        **kwargs,
    )


def _measure_capacity(mediator):
    """Closed-loop probe: MAX_CONCURRENT workers, no think time."""
    latencies = []
    lock = threading.Lock()
    remaining = [CAPACITY_QUERIES]

    def worker():
        while True:
            with lock:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
            start = time.perf_counter()
            mediator.answer(QUERY)
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker) for _ in range(MAX_CONCURRENT)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return CAPACITY_QUERIES / elapsed, latencies


def _storm(mediator, rate, tenants=True):
    """Open-loop storm: CLIENTS threads submit at aggregate ``rate``.

    Arrival times are fixed up front (open loop: the storm does not
    slow down because the server is slow — that is what makes
    overload overload).  Returns per-query outcomes.
    """
    interval = 1.0 / rate
    total = CLIENTS * QUERIES_PER_CLIENT
    outcomes = []
    lock = threading.Lock()
    storm_start = time.perf_counter() + 0.05

    def client(index):
        for round_index in range(QUERIES_PER_CLIENT):
            arrival = storm_start + (
                (round_index * CLIENTS + index) * interval
            )
            delay = arrival - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            start = time.perf_counter()
            try:
                results = mediator.answer(
                    QUERY,
                    tenant=f"tenant{index % 4}" if tenants else None,
                )
            except QueryRejected as exc:
                with lock:
                    outcomes.append(
                        {
                            "status": "shed",
                            "reason": exc.reason,
                            "queue_depth": exc.queue_depth,
                            "retry_after": exc.retry_after,
                        }
                    )
            else:
                elapsed = time.perf_counter() - start
                with lock:
                    outcomes.append(
                        {
                            "status": "completed",
                            "e2e_s": elapsed,
                            "objects": len(results),
                        }
                    )

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    assert len(outcomes) == total
    return outcomes, duration


def test_admission_keeps_goodput_flat_at_4x_overload(
    artifact_sink, bench_json_sink
):
    """Goodput, sheds, and p99 with and without the admission gate."""
    # -- capacity: what can this mediator actually sustain? ----------
    scenario, _ = _scenario()
    gated = _mediator(scenario, admission=True)
    capacity, capacity_latencies = _measure_capacity(gated)
    service_p50 = _percentile(capacity_latencies, 0.50)

    # -- the same mediator under a 4x open-loop storm ----------------
    storm_rate = OVERLOAD * capacity
    outcomes, duration = _storm(gated, storm_rate)
    gated_snapshot = gated.admission.snapshot()
    gated.close()

    completed = [o for o in outcomes if o["status"] == "completed"]
    shed = [o for o in outcomes if o["status"] == "shed"]
    e2e = [o["e2e_s"] for o in completed]
    in_deadline = [s for s in e2e if s <= DEADLINE + GRACE]
    goodput = len(in_deadline) / duration
    admitted_p99 = _percentile(e2e, 0.99) if e2e else 0.0
    misses = len(e2e) - len(in_deadline)

    # -- baseline: the identical storm, no admission gate ------------
    base_scenario, base_sources = _scenario()
    baseline = _mediator(base_scenario, admission=False)
    # warm the compile caches like the probe did; uncontended, so its
    # answer size is the complete (untruncated) reference
    expected_objects = len(baseline.answer(QUERY))
    base_outcomes, base_duration = _storm(
        baseline, storm_rate, tenants=False
    )
    baseline.close()
    base_completed = [
        o for o in base_outcomes if o["status"] == "completed"
    ]
    base_e2e = [o["e2e_s"] for o in base_completed]
    base_p99 = _percentile(base_e2e, 0.99)
    base_misses = sum(1 for s in base_e2e if s > DEADLINE + GRACE)
    base_goodput = (
        sum(1 for s in base_e2e if s <= DEADLINE + GRACE) / base_duration
    )
    # under deadline pressure the truncating governor hands back
    # partial answers — completed-but-incomplete is degradation too
    base_incomplete = sum(
        1 for o in base_completed if o["objects"] < expected_objects
    )
    peak_fanin = max(s.peak_active for s in base_sources.values())

    reasons = {}
    for outcome in shed:
        reasons[outcome["reason"]] = reasons.get(outcome["reason"], 0) + 1
    artifact_sink(
        "admission control at 4x overload",
        f"capacity {capacity:.0f} q/s (service p50"
        f" {service_p50 * 1e3:.1f}ms), storm at {storm_rate:.0f} q/s"
        f" for {len(outcomes)} queries, deadline {DEADLINE}s\n"
        f"{'':14}goodput     p99      misses  shed\n"
        f"admission     {goodput:7.0f}/s  {admitted_p99 * 1e3:6.0f}ms"
        f"  {misses:6d}  {len(shed)} ({reasons})\n"
        f"no admission  {base_goodput:7.0f}/s  {base_p99 * 1e3:6.0f}ms"
        f"  {base_misses:6d}  0 (collapse: {base_incomplete} truncated"
        f" answers, peak source fan-in {peak_fanin})",
    )
    bench_json_sink(
        JSON_FILE,
        "overload_4x",
        {
            "people": PEOPLE,
            "base_latency_s": BASE_LATENCY,
            "contention_per_caller": CONTENTION,
            "max_concurrent": MAX_CONCURRENT,
            "queue_depth": QUEUE_DEPTH,
            "deadline_s": DEADLINE,
            "grace_s": GRACE,
            "overload_factor": OVERLOAD,
            "capacity_qps": round(capacity, 2),
            "storm_rate_qps": round(storm_rate, 2),
            "submitted": len(outcomes),
            "admission": {
                "goodput_qps": round(goodput, 2),
                "goodput_vs_capacity": round(goodput / capacity, 3),
                "p99_s": round(admitted_p99, 4),
                "completed": len(completed),
                "shed": len(shed),
                "shed_reasons": reasons,
                "deadline_misses": misses,
                "controller": {
                    "limit": gated_snapshot["limit"],
                    "queue_peak": gated_snapshot["queue_peak"],
                    "rejected": gated_snapshot["rejected"],
                },
            },
            "baseline": {
                "goodput_qps": round(base_goodput, 2),
                "p99_s": round(base_p99, 4),
                "completed": len(base_e2e),
                "deadline_misses": base_misses,
                "truncated_answers": base_incomplete,
                "expected_objects": expected_objects,
                "peak_source_fanin": peak_fanin,
            },
        },
    )

    # accounting balances exactly, and sheds are structured
    assert len(completed) + len(shed) == len(outcomes)
    assert gated_snapshot["submitted"] == (
        gated_snapshot["admitted"] + gated_snapshot["shed"]
    )
    assert gated_snapshot["admitted"] == gated_snapshot["completed"]
    for outcome in shed:
        assert outcome["reason"] in (
            "queue_full", "deadline", "timeout", "tenant"
        )
    # overload actually sheds: a storm 4x capacity cannot all fit
    assert shed, "a 4x storm produced no sheds — not actually overloaded"
    # zero admitted queries miss their end-to-end deadline budget
    assert misses == 0, (
        f"{misses} admitted quer(ies) exceeded the {DEADLINE}s deadline"
        f" (worst {max(e2e):.3f}s)"
    )
    # goodput stays within 20% of capacity
    assert goodput >= 0.8 * capacity, (
        f"goodput {goodput:.0f}/s fell below 80% of capacity"
        f" {capacity:.0f}/s"
    )
    # the no-admission baseline collapses on the same storm: deadline
    # violations, truncated (partial) answers, or unbounded p99
    assert (
        base_misses > 0
        or base_incomplete > 0
        or base_p99 > 2.0 * admitted_p99
    ), (
        "the baseline did not collapse: either the storm is too weak"
        f" or contention is broken (p99 {base_p99:.3f}s vs admitted"
        f" {admitted_p99:.3f}s, {base_misses} misses,"
        f" {base_incomplete} truncated)"
    )

"""Experiment R1 — cost and value of the resilient source layer.

Two questions the reliability layer must answer before it is allowed in
front of every source:

* **overhead** — wrapping a *healthy* source in
  :class:`ResilientSource` (breaker check + clock reads + health
  accounting per call) should cost well under 5% of end-to-end answer
  time, since real source work dwarfs the bookkeeping;
* **recovery** — under injected transient-fault rates, how many
  attempts and how much (simulated) backoff time does each answer
  cost?  The curve should grow smoothly with the fault rate and the
  answers must stay exactly correct.

All fault schedules are seeded and all clocks are manual: the recovery
numbers are deterministic and no benchmark ever sleeps.
"""

import time

from repro.datasets import build_scaled_scenario
from repro.mediator import Mediator
from repro.reliability import (
    FaultInjectingSource,
    ManualClock,
    ResilienceConfig,
    ResilienceManager,
    RetryPolicy,
)

PEOPLE = 200
ROUNDS = 30


def _query_for(scenario, index=PEOPLE // 2):
    name = scenario.whois.export()[index].get("name")
    return f"X :- X:<cs_person {{<name '{name}'>}}>@med"


def _time_answers(mediator, query, rounds=ROUNDS):
    start = time.perf_counter()
    for _ in range(rounds):
        mediator.answer(query)
    return (time.perf_counter() - start) / rounds


def test_overhead_on_healthy_sources(artifact_sink, benchmark):
    """Resilient wrapper vs bare access on fault-free sources."""
    bare = build_scaled_scenario(PEOPLE, push_mode="needed")
    query = _query_for(bare)

    defended = build_scaled_scenario(PEOPLE, push_mode="needed")
    defended.mediator.resilience = ResilienceManager(
        ResilienceConfig(retry=RetryPolicy(max_attempts=3))
    )

    # warm both paths, then interleave timed rounds
    bare.mediator.answer(query)
    defended.mediator.answer(query)
    bare_time = _time_answers(bare.mediator, query)
    defended_time = _time_answers(defended.mediator, query)
    overhead = defended_time / bare_time - 1.0

    artifact_sink(
        "resilience overhead (healthy source)",
        f"people={PEOPLE} rounds={ROUNDS}\n"
        f"bare      : {bare_time * 1e3:8.3f} ms/answer\n"
        f"resilient : {defended_time * 1e3:8.3f} ms/answer\n"
        f"overhead  : {overhead * 100:+.2f}%  (target < 5%)",
    )

    result = benchmark(defended.mediator.answer, query)
    assert len(result) <= 1
    # generous CI bound; the artifact records the real number
    assert overhead < 0.25, f"resilient wrapper overhead {overhead:.1%}"


def test_recovery_curve_under_fault_rates(artifact_sink, benchmark):
    """Attempts and simulated backoff per answer as faults increase."""
    rows = ["rate   attempts/answer   backoff s/answer   answers ok"]
    for rate in (0.0, 0.1, 0.3, 0.5):
        clock = ManualClock()
        scenario = build_scaled_scenario(50, push_mode="needed")
        inner = scenario.registry.resolve("whois")
        scenario.registry.deregister("whois")
        faulty = FaultInjectingSource(
            inner, seed=1996, fault_rate=rate, clock=clock
        )
        scenario.registry.register(faulty)
        mediator = scenario.mediator
        mediator.resilience = ResilienceManager(
            ResilienceConfig(
                retry=RetryPolicy(
                    max_attempts=6, base_delay=0.05, jitter=0.0
                ),
                breaker_threshold=10,
                breaker_cooldown=5.0,
            ),
            clock=clock,
        )
        query = _query_for(scenario, index=25)
        ok = 0
        for _ in range(ROUNDS):
            if len(mediator.answer(query)) >= 0:
                ok += 1
        health = mediator.health_snapshot()["sources"]["whois"]
        queries = health.successes or 1
        rows.append(
            f"{rate:.1f}    {health.attempts / queries:14.2f}"
            f"   {clock.now() / ROUNDS:16.4f}   {ok:10d}"
        )
        assert ok == ROUNDS

    artifact_sink(
        "resilience recovery curve (seeded faults, manual clock)",
        "\n".join(rows),
    )

    scenario = build_scaled_scenario(50, push_mode="needed")
    benchmark(scenario.mediator.answer, _query_for(scenario, index=25))

"""The chaos harness as a test: a quick slice of seeded schedules.

The full sweep (``python tools/chaos.py --seeds 25``) runs in CI's
chaos-smoke job; here a handful of quick schedules keeps the invariants
under the default test run without slowing it down.
"""

import importlib.util
from pathlib import Path

import pytest

_CHAOS_PATH = Path(__file__).resolve().parents[2] / "tools" / "chaos.py"
_spec = importlib.util.spec_from_file_location("repro_chaos", _CHAOS_PATH)
chaos = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(chaos)


@pytest.mark.parametrize("seed", [1996, 1997, 1998])
def test_fault_schedule_holds_invariants(seed):
    violations = chaos.run_fault_schedule(seed, quick=True, verbose=False)
    assert not violations, violations


@pytest.mark.parametrize("seed", [1996, 1997, 1998])
def test_latency_schedule_holds_invariants(seed):
    violations = chaos.run_latency_schedule(seed, quick=True, verbose=False)
    assert not violations, violations


@pytest.mark.parametrize("seed", [1996, 1997, 1998])
def test_concurrent_schedule_holds_invariants(seed):
    violations = chaos.run_concurrent_schedule(
        seed, quick=True, verbose=False
    )
    assert not violations, violations


def test_cli_reports_clean_schedules(capsys):
    assert chaos.main(["--seeds", "2", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "6/6 schedule(s) clean" in out


def test_cli_kind_filter_runs_one_kind(capsys):
    assert chaos.main(
        ["--seeds", "2", "--quick", "--kind", "concurrent"]
    ) == 0
    out = capsys.readouterr().out
    assert "2/2 schedule(s) clean" in out


def test_cli_rejects_bad_seed_count():
    with pytest.raises(SystemExit):
        chaos.main(["--seeds", "0"])

"""Shared hypothesis strategies for OEM structures and MSL fragments."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.oem import OEMObject, atom, obj

#: Labels drawn from a small vocabulary so structures overlap and join.
labels = st.sampled_from(
    ["person", "name", "dept", "year", "rel", "title", "e_mail", "tag"]
)

#: Atom values that survive text round-trips (no NaN; strings printable).
atom_values = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.text(
        alphabet=st.characters(
            codec="ascii", min_codepoint=32, max_codepoint=126
        ),
        max_size=12,
    ),
    st.booleans(),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


@st.composite
def oem_objects(draw, max_depth: int = 3) -> OEMObject:
    """A random OEM object of bounded depth."""
    if max_depth <= 1 or draw(st.booleans()):
        return atom(draw(labels), draw(atom_values))
    children = draw(
        st.lists(oem_objects(max_depth=max_depth - 1), max_size=4)
    )
    return obj(draw(labels), *children)


oem_forests = st.lists(oem_objects(), min_size=0, max_size=5)

#: Flat record objects: one label, fields from a fixed set — the shape
#: sources usually export, good for matcher/evaluator properties.
field_names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def record_objects(draw) -> OEMObject:
    fields = draw(
        st.lists(
            st.tuples(field_names, st.integers(0, 5)),
            min_size=0,
            max_size=4,
            unique_by=lambda pair: pair[0],
        )
    )
    return obj("rec", *[atom(name, value) for name, value in fields])


record_forests = st.lists(record_objects(), min_size=0, max_size=8)

"""Property: operator fusion never changes what a query means.

The equivalence contract of :mod:`repro.mediator.pipeline`
(docs/performance.md): a mediator with ``fuse=True`` produces output
**bit-for-bit** equal to the node-per-operator reference path — same
answer objects *including mediator-assigned oids* (fused execution
drives rows in the same order, so the oid generator ticks identically),
same warnings, same budget truncation points, and the same per-operator
profile row counts.  This holds at any parallelism, under both budget
modes, and under injected source faults.

Each case therefore builds *twin* scenarios from one seed — two
identical source registries, two fresh mediators differing only in
``fuse`` — and compares ``repr`` streams, which capture oids verbatim.
(Contrast ``test_parallel_properties.py``, which compares by structural
key because parallel scheduling is allowed to reorder oid assignment;
fusion is held to the stricter bar.)
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.staff import build_scaled_scenario
from repro.governor import BudgetExceeded, QueryBudget
from repro.mediator import Mediator
from repro.reliability import (
    FaultInjectingSource,
    ManualClock,
    ResilienceConfig,
    RetryPolicy,
)

FANOUT_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"


def exact(objects):
    """Bit-for-bit object stream: repr includes the assigned oid."""
    return [repr(o) for o in objects]


def exact_warnings(warnings):
    return [repr(w) for w in warnings]


def make_pair(people, seed, **kwargs):
    """Twin mediators over twin scenarios: (fused, unfused).

    Two scenarios are built from the same seed so each mediator owns
    its own sources and its own oid generator — any divergence between
    the pair is then attributable to fusion alone.
    """
    mediators = []
    for fuse in (True, False):
        scenario = build_scaled_scenario(
            people, seed=seed, push_mode="needed"
        )
        mediators.append(
            Mediator(
                "med",
                scenario.mediator.specification,
                scenario.registry,
                scenario.externals,
                push_mode="needed",
                register=False,
                fuse=fuse,
                **kwargs,
            )
        )
    return tuple(mediators)


def shared_node_counts(mediator):
    """Per-operator (calls, rows) from the profiler, fusion noise removed.

    The fused profile carries an *additive* ``FusedPipelineNode`` entry
    on top of the constituent counters; everything else must match the
    reference run exactly.
    """
    nodes = mediator.profiler.snapshot()["nodes"]
    return {
        name: (entry["calls"], entry["rows"])
        for name, entry in nodes.items()
        if name != "FusedPipelineNode"
    }


class TestFusedEqualsUnfused:
    @given(
        people=st.integers(min_value=4, max_value=28),
        seed=st.integers(min_value=0, max_value=10_000),
        parallelism=st.sampled_from([1, 8]),
    )
    @settings(max_examples=10, deadline=None)
    def test_answers_warnings_and_profile(self, people, seed, parallelism):
        fused, unfused = make_pair(people, seed, parallelism=parallelism)
        fused_result = fused.query(FANOUT_QUERY)
        unfused_result = unfused.query(FANOUT_QUERY)
        assert exact(fused_result) == exact(unfused_result)
        assert exact_warnings(fused_result.warnings) == exact_warnings(
            unfused_result.warnings
        )
        assert shared_node_counts(fused) == shared_node_counts(unfused)
        # fusion actually engaged (the heuristic plan is straight-line
        # after the source scan, so at least one chain must fuse)
        assert fused.last_fusion and any(
            d.fused for d in fused.last_fusion
        )
        assert not unfused.last_fusion

    @given(
        people=st.integers(min_value=8, max_value=28),
        seed=st.integers(min_value=0, max_value=10_000),
        max_total_rows=st.integers(min_value=5, max_value=60),
        parallelism=st.sampled_from([1, 8]),
    )
    @settings(max_examples=10, deadline=None)
    def test_truncate_budget_same_cut_point(
        self, people, seed, max_total_rows, parallelism
    ):
        """Truncation must clip both paths at the same row."""
        fused, unfused = make_pair(
            people,
            seed,
            parallelism=parallelism,
            budget=QueryBudget(max_total_rows=max_total_rows),
            budget_mode="truncate",
        )
        fused_result = fused.query(FANOUT_QUERY)
        unfused_result = unfused.query(FANOUT_QUERY)
        assert exact(fused_result) == exact(unfused_result)
        assert exact_warnings(fused_result.warnings) == exact_warnings(
            unfused_result.warnings
        )

    @given(
        people=st.integers(min_value=8, max_value=28),
        seed=st.integers(min_value=0, max_value=10_000),
        max_result_objects=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=8, deadline=None)
    def test_truncate_result_objects(self, people, seed, max_result_objects):
        fused, unfused = make_pair(
            people,
            seed,
            budget=QueryBudget(max_result_objects=max_result_objects),
            budget_mode="truncate",
        )
        fused_result = fused.query(FANOUT_QUERY)
        unfused_result = unfused.query(FANOUT_QUERY)
        assert exact(fused_result) == exact(unfused_result)
        assert exact_warnings(fused_result.warnings) == exact_warnings(
            unfused_result.warnings
        )

    @given(
        people=st.integers(min_value=10, max_value=28),
        seed=st.integers(min_value=0, max_value=10_000),
        max_total_rows=st.integers(min_value=3, max_value=30),
    )
    @settings(max_examples=8, deadline=None)
    def test_strict_budget_same_violation(self, people, seed, max_total_rows):
        """Strict mode must blame the same node with the same message."""
        fused, unfused = make_pair(
            people,
            seed,
            budget=QueryBudget(max_total_rows=max_total_rows),
            budget_mode="strict",
        )
        outcomes = []
        for mediator in (fused, unfused):
            try:
                result = mediator.query(FANOUT_QUERY)
            except BudgetExceeded as exc:
                outcomes.append(("raised", str(exc)))
            else:
                outcomes.append(("ok", exact(result)))
        assert outcomes[0] == outcomes[1]


class TestFusionUnderFaults:
    """A chaos-harness slice: seeded faults, degrade mode, fuse on/off.

    Fused execution issues the same source calls in the same order, so
    a seeded fault schedule hits both paths identically — surviving
    answers *and* degrade warnings must still match bit-for-bit.
    (``tools/chaos.py`` randomizes ``fuse`` across whole schedules;
    this is the paired, minimized version of that check.)
    """

    @staticmethod
    def build_faulty(people, seed, fault_seed, fuse):
        scenario = build_scaled_scenario(
            people, seed=seed, push_mode="needed"
        )
        clock = ManualClock()
        for index, name in enumerate(("whois", "cs")):
            inner = scenario.registry.resolve(name)
            scenario.registry.deregister(name)
            scenario.registry.register(
                FaultInjectingSource(
                    inner,
                    seed=fault_seed + index,
                    fault_rate=0.3,
                    latency=0.01,
                    clock=clock,
                )
            )
        return Mediator(
            "med",
            scenario.mediator.specification,
            scenario.registry,
            scenario.externals,
            push_mode="needed",
            register=False,
            fuse=fuse,
            on_source_failure="degrade",
            resilience=ResilienceConfig(
                # shallow retries so some faults *surface* as degrade
                # warnings — the interesting case for equality
                retry=RetryPolicy(
                    max_attempts=2, base_delay=0.01, jitter=0.0
                ),
                breaker_threshold=100,
            ),
            clock=clock,
        )

    @given(
        people=st.integers(min_value=6, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
        fault_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_fault_schedule_hits_both_paths_identically(
        self, people, seed, fault_seed
    ):
        fused = self.build_faulty(people, seed, fault_seed, fuse=True)
        unfused = self.build_faulty(people, seed, fault_seed, fuse=False)
        fused_result = fused.query(FANOUT_QUERY)
        unfused_result = unfused.query(FANOUT_QUERY)
        assert exact(fused_result) == exact(unfused_result)
        assert exact_warnings(fused_result.warnings) == exact_warnings(
            unfused_result.warnings
        )


class TestFusionSurface:
    def test_export_is_bit_for_bit(self):
        fused, unfused = make_pair(24, seed=7)
        assert exact(fused.export()) == exact(unfused.export())

    @pytest.mark.parametrize("strategy", ["heuristic", "fetch_all"])
    def test_strategies(self, strategy):
        """fetch_all plans put a JoinNode barrier mid-plan; the chains
        around it must still fuse to the same answers."""
        mediators = []
        for fuse in (True, False):
            scenario = build_scaled_scenario(
                20, seed=11, push_mode="needed", strategy=strategy
            )
            mediators.append(
                Mediator(
                    "med",
                    scenario.mediator.specification,
                    scenario.registry,
                    scenario.externals,
                    push_mode="needed",
                    strategy=strategy,
                    register=False,
                    fuse=fuse,
                )
            )
        fused, unfused = mediators
        assert exact(fused.query(FANOUT_QUERY)) == exact(
            unfused.query(FANOUT_QUERY)
        )

"""Property: degraded answers never invent data.

For any seeded fault schedule, a degrade-mode mediator's answer to the
paper's MS1 queries is a *subset* (by structural key) of the fault-free
answer — degradation can lose results, never fabricate or corrupt
them.  And whenever the answer carries no warnings, it is exactly the
fault-free answer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    JOE_CHUNG_QUERY,
    MS1,
    YEAR3_QUERY,
    build_cs_database,
    build_scenario,
    build_whois_objects,
)
from repro.external.registry import default_registry
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.reliability import (
    FaultInjectingSource,
    ManualClock,
    ResilienceConfig,
    RetryPolicy,
)
from repro.wrappers import OEMStoreWrapper, RelationalWrapper, SourceRegistry

QUERIES = [JOE_CHUNG_QUERY, YEAR3_QUERY]


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def build_faulty_mediator(seed, fault_rate, empty_rate, malformed_rate, dead):
    clock = ManualClock()
    registry = SourceRegistry()
    registry.register(
        FaultInjectingSource(
            OEMStoreWrapper("whois", build_whois_objects()),
            seed=seed,
            fault_rate=fault_rate,
            empty_rate=empty_rate,
            malformed_rate=malformed_rate,
            dead=dead,
            clock=clock,
        )
    )
    registry.register(RelationalWrapper("cs", build_cs_database()))
    return Mediator(
        "med",
        MS1,
        registry,
        default_registry(),
        on_source_failure="degrade",
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=3, base_delay=0.05),
            breaker_threshold=4,
            breaker_cooldown=60.0,
        ),
        clock=clock,
    )


class TestDegradationIsMonotone:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fault_rate=st.floats(min_value=0.0, max_value=0.8),
        empty_rate=st.sampled_from([0.0, 0.1, 0.2]),
        malformed_rate=st.floats(min_value=0.0, max_value=0.2),
        dead=st.booleans(),
        query=st.sampled_from(QUERIES),
    )
    @settings(max_examples=40, deadline=None)
    def test_degrade_answers_are_a_subset_of_fault_free_answers(
        self, seed, fault_rate, empty_rate, malformed_rate, dead, query
    ):
        fault_free = canonical(build_scenario().mediator.answer(query))
        mediator = build_faulty_mediator(
            seed, fault_rate, empty_rate, malformed_rate, dead
        )
        for _ in range(3):
            results = mediator.query(query)
            keys = canonical(results.objects())
            assert set(keys) <= set(fault_free)
            if results.complete and empty_rate == 0.0:
                # no degradation ⇒ exactly the fault-free answer (an
                # injected *empty* answer is indistinguishable from a
                # truly empty source, so it is exempt — it still only
                # ever loses results, as the subset check asserts)
                assert keys == fault_free

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_fault_schedules_are_reproducible(self, seed):
        def run():
            mediator = build_faulty_mediator(seed, 0.5, 0.1, 0.1, False)
            outcome = []
            for query in QUERIES:
                results = mediator.query(query)
                outcome.append(
                    (
                        canonical(results.objects()),
                        [(w.source, w.attempts) for w in results.warnings],
                    )
                )
            return outcome

        assert run() == run()

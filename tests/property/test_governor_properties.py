"""Property: governed answers never invent data.

Mirror of :mod:`tests.property.test_degradation_properties` for the
query governor.  For any budget, a truncate-mode run's answer is a
*subset* (by structural key) of the unbudgeted answer — clipping can
lose results, never fabricate or corrupt them.  A run that finishes
without budget warnings is exactly the unbudgeted answer.  And the
answer sanitizer, fed arbitrarily corrupted OEM, never crashes and is
idempotent on its own output.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import JOE_CHUNG_QUERY, YEAR3_QUERY, build_scenario
from repro.governor import AnswerSanitizer, BudgetWarning, QueryBudget
from repro.oem import structural_key
from repro.oem.model import OEMObject

QUERIES = [JOE_CHUNG_QUERY, YEAR3_QUERY]


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


budgets = st.builds(
    QueryBudget,
    max_rows_per_table=st.one_of(
        st.none(), st.integers(min_value=1, max_value=30)
    ),
    max_total_rows=st.one_of(
        st.none(), st.integers(min_value=1, max_value=60)
    ),
    max_result_objects=st.one_of(
        st.none(), st.integers(min_value=1, max_value=5)
    ),
    max_external_calls=st.one_of(
        st.none(), st.integers(min_value=1, max_value=10)
    ),
)


class TestTruncationIsMonotone:
    @given(budget=budgets, query=st.sampled_from(QUERIES))
    @settings(max_examples=50, deadline=None)
    def test_truncated_answers_are_a_subset_of_unbudgeted_answers(
        self, budget, query
    ):
        unbudgeted = canonical(build_scenario().mediator.answer(query))
        mediator = build_scenario().mediator
        mediator.budget = budget
        mediator.budget_mode = "truncate"
        results = mediator.query(query)
        keys = canonical(results.objects())
        assert set(keys) <= set(unbudgeted)
        clipped = any(
            isinstance(w, BudgetWarning) for w in results.warnings
        )
        if not clipped:
            # nothing was clipped ⇒ exactly the unbudgeted answer
            assert keys == unbudgeted

    @given(budget=budgets, query=st.sampled_from(QUERIES))
    @settings(max_examples=25, deadline=None)
    def test_governed_runs_are_reproducible(self, budget, query):
        def run():
            mediator = build_scenario().mediator
            mediator.budget = budget
            mediator.budget_mode = "truncate"
            results = mediator.query(query)
            return (
                canonical(results.objects()),
                [(w.budget, w.count) for w in results.warnings],
            )

        assert run() == run()

    @given(
        limit=st.integers(min_value=1, max_value=4),
        query=st.sampled_from(QUERIES),
    )
    @settings(max_examples=20, deadline=None)
    def test_result_cap_is_respected_exactly(self, limit, query):
        mediator = build_scenario().mediator
        mediator.budget = QueryBudget(max_result_objects=limit)
        mediator.budget_mode = "truncate"
        results = mediator.query(query)
        assert len(results) <= limit


def _random_forest(rng, depth=0):
    objects = []
    for _ in range(rng.randint(1, 3)):
        if depth < 4 and rng.random() < 0.5:
            objects.append(
                OEMObject(f"s{depth}", tuple(_random_forest(rng, depth + 1)))
            )
        else:
            objects.append(
                OEMObject("a", rng.choice(["v", 3, 1.5, False, None]))
            )
    return objects


def _corrupt(rng, objects, ancestors=()):
    for obj in objects:
        roll = rng.random()
        if roll < 0.15:
            object.__setattr__(obj, "label", rng.choice(("", 1, None)))
        elif roll < 0.3:
            object.__setattr__(obj, "type", rng.choice(("junk", "set", 7)))
        elif roll < 0.45:
            target = (
                rng.choice(ancestors) if ancestors and roll < 0.37 else obj
            )
            object.__setattr__(obj, "value", (target,))
            object.__setattr__(obj, "type", "set")
        if obj.type == "set" and isinstance(obj.value, tuple):
            _corrupt(rng, list(obj.value), ancestors + (obj,))
    return objects


class TestSanitizerProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_sanitizer_never_crashes_and_is_idempotent(self, seed):
        rng = random.Random(seed)
        answer = _corrupt(rng, _random_forest(rng))
        sanitizer = AnswerSanitizer(max_depth=16, max_objects=500)
        clean, _ = sanitizer.sanitize("fuzz", answer)
        again, warnings = sanitizer.sanitize("fuzz", clean)
        assert warnings == []
        assert [repr(o) for o in again] == [repr(o) for o in clean]

"""Property: tracing observes execution without perturbing its shape.

Two invariants of the span layer (docs/observability.md):

* every retained forest is *tree-shaped* — one root per query, every
  ``parent_id`` resolves inside the same query's span set, and parent
  chains terminate at the root (no cycles, no cross-query edges) —
  even when plan nodes run on 8 dispatcher workers concurrently;
* the forest a parallel run produces is the *same tree* the sequential
  engine produces, modulo timing and thread attribution: span kinds,
  names, and the parent/child structure must match exactly, because
  the plan is the same plan and tracing must not depend on which
  thread happened to execute a node.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.staff import build_scaled_scenario
from repro.mediator import Mediator

FANOUT_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"


def traced_mediator(scenario, parallelism):
    """A fresh mediator over the scenario's sources, tracing enabled."""
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        push_mode="needed",
        register=False,
        parallelism=parallelism,
        telemetry=True,
    )


def span_shape(span, children):
    """(kind, name, sorted child shapes) — timing and ids erased."""
    return (
        span.kind,
        span.name,
        tuple(
            sorted(
                span_shape(child, children)
                for child in children.get(span.span_id, [])
            )
        ),
    )


def forest_shapes(tracer):
    """One canonical shape per query, in query order."""
    shapes = []
    for spans in tracer.forest().values():
        children = {}
        roots = []
        for span in spans:
            if span.parent_id is None:
                roots.append(span)
            else:
                children.setdefault(span.parent_id, []).append(span)
        shapes.append(
            tuple(sorted(span_shape(root, children) for root in roots))
        )
    return shapes


class TestSpanForestProperties:
    @given(
        people=st.integers(min_value=3, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_parallel_forest_is_tree_shaped(self, people, seed):
        scenario = build_scaled_scenario(people, seed=seed, push_mode="needed")
        mediator = traced_mediator(scenario, parallelism=8)
        mediator.query(FANOUT_QUERY)
        forest = mediator.telemetry.tracer.forest()
        assert forest  # the run was sampled and retained
        for spans in forest.values():
            ids = {span.span_id for span in spans}
            roots = [span for span in spans if span.parent_id is None]
            assert len(roots) == 1
            parent_of = {
                span.span_id: span.parent_id for span in spans
            }
            for span in spans:
                # every edge stays inside this query's span set...
                if span.parent_id is not None:
                    assert span.parent_id in ids
                # ...and walking up always terminates at the root
                seen = set()
                cursor = span.span_id
                while parent_of[cursor] is not None:
                    assert cursor not in seen
                    seen.add(cursor)
                    cursor = parent_of[cursor]
                assert cursor == roots[0].span_id

    @given(
        people=st.integers(min_value=3, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_parallel_forest_equals_sequential_forest(self, people, seed):
        # no cache and unique per-person parameterized queries, so the
        # single-flight layer never merges calls: the wire traffic —
        # and therefore the span tree — must be identical
        scenario = build_scaled_scenario(people, seed=seed, push_mode="needed")
        sequential = traced_mediator(scenario, parallelism=1)
        parallel = traced_mediator(scenario, parallelism=8)
        sequential.query(FANOUT_QUERY)
        parallel.query(FANOUT_QUERY)
        assert forest_shapes(parallel.telemetry.tracer) == forest_shapes(
            sequential.telemetry.tracer
        )

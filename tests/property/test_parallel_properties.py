"""Property: parallel execution never changes what a query means.

The determinism contract of the execution layer (docs/performance.md):
with deterministic sources, a fixed seed, and a ManualClock, a run at
``parallelism=N`` with an answer cache produces the same result
objects (by structural key — oids are mediator-assigned and
run-specific) and the same warnings as the plain sequential engine.
Single-flight dedup and caching may only remove *duplicate* wire
calls, never change any answer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    JOE_CHUNG_QUERY,
    MS1,
    YEAR3_QUERY,
    build_cs_database,
    build_whois_objects,
)
from repro.datasets.staff import build_scaled_scenario
from repro.exec import AnswerCache
from repro.external.registry import default_registry
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.reliability import (
    FaultInjectingSource,
    ManualClock,
    ResilienceConfig,
    RetryPolicy,
)
from repro.wrappers import OEMStoreWrapper, RelationalWrapper, SourceRegistry

FANOUT_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def warning_signatures(warnings):
    return sorted((w.source, w.error) for w in warnings)


def build_mediator(
    seed,
    fault_rate=0.0,
    dead=False,
    parallelism=1,
    cache=None,
    on_source_failure="fail",
):
    """A fresh MS1 mediator with its own fault schedule and health."""
    clock = ManualClock()
    registry = SourceRegistry()
    registry.register(
        FaultInjectingSource(
            OEMStoreWrapper("whois", build_whois_objects()),
            seed=seed,
            fault_rate=fault_rate,
            dead=dead,
            latency=0.05,
            clock=clock,
        )
    )
    registry.register(RelationalWrapper("cs", build_cs_database()))
    return Mediator(
        "med",
        MS1,
        registry,
        default_registry(),
        on_source_failure=on_source_failure,
        resilience=ResilienceConfig(
            # a deep retry budget masks any non-dead fault schedule:
            # fault_rate <= 0.3 over 8 attempts leaves < 0.01% chance
            # of surfacing, so answers stay schedule-independent
            retry=RetryPolicy(
                max_attempts=8, base_delay=0.01, jitter=0.0
            ),
            breaker_threshold=100,
        ),
        clock=clock,
        parallelism=parallelism,
        cache=cache,
    )


class TestParallelEqualsSequential:
    @given(
        people=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
        parallelism=st.sampled_from([2, 4, 8]),
        with_cache=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_scaled_fanout_workload(
        self, people, seed, parallelism, with_cache
    ):
        scenario = build_scaled_scenario(
            people, seed=seed, push_mode="needed"
        )
        sequential = scenario.mediator.query(FANOUT_QUERY)
        parallel_mediator = Mediator(
            "med",
            scenario.mediator.specification,
            scenario.registry,
            scenario.externals,
            push_mode="needed",
            register=False,
            parallelism=parallelism,
            cache=AnswerCache(max_entries=128) if with_cache else None,
        )
        for _ in range(2):  # second round exercises cache hits
            results = parallel_mediator.query(FANOUT_QUERY)
            assert canonical(results) == canonical(sequential)
            assert warning_signatures(
                results.warnings
            ) == warning_signatures(sequential.warnings)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fault_rate=st.floats(min_value=0.0, max_value=0.3),
        parallelism=st.sampled_from([2, 8]),
        query=st.sampled_from([JOE_CHUNG_QUERY, YEAR3_QUERY]),
    )
    @settings(max_examples=15, deadline=None)
    def test_masked_fault_schedules(
        self, seed, fault_rate, parallelism, query
    ):
        # retries fully absorb the injected faults, so the answer must
        # not depend on the interleaving of attempts across workers
        sequential = build_mediator(seed, fault_rate=fault_rate)
        parallel = build_mediator(
            seed,
            fault_rate=fault_rate,
            parallelism=parallelism,
            cache=AnswerCache(max_entries=64),
        )
        expected = canonical(sequential.answer(query))
        assert canonical(parallel.answer(query)) == expected
        assert canonical(parallel.answer(query)) == expected

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_health_counters_match_without_faults(self, seed):
        # no faults, no cache, unique queries: the wire traffic of a
        # parallel run is *identical* to the sequential run's, so the
        # shared health registry must agree exactly
        sequential = build_mediator(seed)
        parallel = build_mediator(seed, parallelism=8)
        for query in (JOE_CHUNG_QUERY, YEAR3_QUERY):
            sequential.answer(query)
            parallel.answer(query)
        for source in ("whois", "cs"):
            before = sequential.health_snapshot()["sources"][source]
            after = parallel.health_snapshot()["sources"][source]
            assert (before.attempts, before.successes, before.failures) == (
                after.attempts, after.successes, after.failures
            )
        assert (
            parallel.last_context.queries_sent
            == sequential.last_context.queries_sent
        )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        parallelism=st.sampled_from([2, 4]),
    )
    @settings(max_examples=10, deadline=None)
    def test_degraded_warnings_survive_parallelism(self, seed, parallelism):
        # a dead source degrades identically whether the queries that
        # hit it run on one thread or many
        sequential = build_mediator(
            seed, dead=True, on_source_failure="degrade"
        )
        parallel = build_mediator(
            seed, dead=True, on_source_failure="degrade",
            parallelism=parallelism,
        )
        for query in (JOE_CHUNG_QUERY, YEAR3_QUERY):
            expected = sequential.query(query)
            observed = parallel.query(query)
            assert canonical(observed) == canonical(expected)
            assert warning_signatures(
                observed.warnings
            ) == warning_signatures(expected.warnings)

"""Property-based tests for the OEM layer."""

from hypothesis import given, settings

from repro.oem import (
    eliminate_duplicates,
    parse_oem,
    structural_hash,
    structural_key,
    structurally_equal,
    to_text,
)

from tests.property.strategies import oem_forests, oem_objects


class TestRoundTrip:
    @given(oem_forests)
    @settings(max_examples=150)
    def test_parse_of_to_text_is_identity(self, forest):
        reparsed = parse_oem(to_text(forest))
        assert len(reparsed) == len(forest)
        for original, again in zip(forest, reparsed):
            assert structurally_equal(original, again)

    @given(oem_forests)
    def test_to_text_is_stable(self, forest):
        once = to_text(forest)
        again = to_text(parse_oem(once))
        assert once == again


class TestEqualityLaws:
    @given(oem_objects())
    def test_reflexive(self, obj_):
        assert structurally_equal(obj_, obj_)

    @given(oem_objects(), oem_objects())
    def test_symmetric(self, a, b):
        assert structurally_equal(a, b) == structurally_equal(b, a)

    @given(oem_objects(), oem_objects())
    def test_hash_respects_equality(self, a, b):
        if structurally_equal(a, b):
            assert structural_hash(a) == structural_hash(b)

    @given(oem_objects())
    def test_key_determines_equality(self, obj_):
        clone = obj_.with_oid("&clone")
        assert structural_key(obj_) == structural_key(clone)
        assert structurally_equal(obj_, clone)


class TestDedupLaws:
    @given(oem_forests)
    def test_idempotent(self, forest):
        once = eliminate_duplicates(forest)
        assert eliminate_duplicates(once) == once

    @given(oem_forests)
    def test_no_two_equal_survivors(self, forest):
        result = eliminate_duplicates(forest)
        keys = [structural_key(o) for o in result]
        assert len(keys) == len(set(keys))

    @given(oem_forests)
    def test_preserves_membership(self, forest):
        result = eliminate_duplicates(forest)
        result_keys = {structural_key(o) for o in result}
        assert result_keys == {structural_key(o) for o in forest}

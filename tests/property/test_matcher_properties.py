"""Property-based tests for the MSL matcher's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msl import (
    Const,
    Pattern,
    PatternItem,
    RestSpec,
    SetPattern,
    Var,
    match_pattern,
    parse_pattern,
)
from repro.oem import structural_key

from tests.property.strategies import oem_objects, record_objects


def pattern_from_object(obj_, use_vars: bool, _counter=None) -> Pattern:
    """A pattern that must match ``obj_`` (constants or fresh variables)."""
    import itertools

    if _counter is None:
        _counter = itertools.count(1)
    if obj_.is_atomic:
        value = (
            Var(f"V{next(_counter)}") if use_vars else Const(obj_.value)
        )
        return Pattern(label=Const(obj_.label), value=value)
    items = tuple(
        PatternItem(pattern_from_object(child, use_vars, _counter))
        for child in obj_.children
    )
    return Pattern(label=Const(obj_.label), value=SetPattern(items, None))


class TestSelfMatch:
    @given(oem_objects())
    @settings(max_examples=100)
    def test_constant_pattern_of_object_matches_it(self, obj_):
        pattern = pattern_from_object(obj_, use_vars=False)
        assert list(match_pattern(pattern, obj_)), str(pattern)

    @given(record_objects())
    def test_variable_pattern_matches_and_binds(self, obj_):
        pattern = pattern_from_object(obj_, use_vars=True)
        results = list(match_pattern(pattern, obj_))
        assert results

    @given(oem_objects())
    def test_anonymous_label_pattern_matches_everything(self, obj_):
        results = list(match_pattern(parse_pattern("<_ _>"), obj_))
        assert len(results) == 1


class TestRestPartition:
    @given(record_objects(), st.sampled_from(["a", "b", "c", "d"]))
    def test_consumed_plus_rest_equals_children(self, obj_, field):
        pattern = Pattern(
            label=Const("rec"),
            value=SetPattern(
                (PatternItem(Pattern(label=Const(field), value=Var("X"))),),
                RestSpec(Var("R")),
            ),
        )
        for env in match_pattern(pattern, obj_):
            rest_keys = sorted(
                repr(structural_key(o)) for o in env["R"]
            )
            all_keys = sorted(
                repr(structural_key(o)) for o in obj_.children
            )
            # the rest has exactly one fewer member (the consumed field)
            assert len(rest_keys) == len(all_keys) - 1
            # and every rest member is a child
            child_keys = [repr(structural_key(o)) for o in obj_.children]
            for key in rest_keys:
                assert key in child_keys

    @given(record_objects())
    def test_empty_items_rest_binds_all_children(self, obj_):
        pattern = Pattern(
            label=Const("rec"),
            value=SetPattern((), RestSpec(Var("R"))),
        )
        (env,) = match_pattern(pattern, obj_)
        assert len(env["R"]) == len(obj_.children)


class TestMatchDeterminism:
    @given(oem_objects())
    def test_matching_twice_gives_same_bindings(self, obj_):
        pattern = pattern_from_object(obj_, use_vars=True)
        first = [e.key() for e in match_pattern(pattern, obj_)]
        second = [e.key() for e in match_pattern(pattern, obj_)]
        assert first == second

    @given(oem_objects())
    def test_object_var_always_binds_whole_object(self, obj_):
        pattern = Pattern(
            label=Var("_"), value=Var("_"), object_var=Var("O")
        )
        (env,) = match_pattern(pattern, obj_)
        assert env["O"] is obj_

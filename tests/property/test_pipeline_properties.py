"""Property-based tests for the full MSI pipeline.

The central invariant: for any data in the sources, the optimized
datamerge engine computes exactly what the naive reference evaluator
computes.  We fuzz the *data* (the specification and queries stay fixed
at the paper's MS1 shape) and also fuzz simple single-source rules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mediator import Mediator
from repro.msl import evaluate_rule, parse_query, parse_rule
from repro.oem import atom, eliminate_duplicates, obj, structural_key
from repro.wrappers import OEMStoreWrapper, SourceRegistry

from tests.property.strategies import record_forests


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


RULES = [
    "<out {<a A> | R}> :- <rec {<a A> | R}>@src",
    "<out {<a A> <b B>}> :- <rec {<a A> <b B>}>@src",
    "<out {<a A>}> :- <rec {<a A>}>@src AND A > 2",
    "<pair {<x A> <y A2>}> :- <rec {<a A> <b A2>}>@src",
]

QUERIES = [
    "X :- X:<out {<a 1>}>@m",
    "X :- X:<out {<a A>}>@m",
    "<got A> :- <out {<a A> <b B>}>@m AND A = B",
]


class TestEngineEqualsReference:
    @given(record_forests, st.sampled_from(RULES))
    @settings(max_examples=60, deadline=None)
    def test_export_matches_reference(self, forest, rule_text):
        registry = SourceRegistry(OEMStoreWrapper("src", forest))
        mediator = Mediator("m", rule_text, registry)
        engine_view = mediator.export()
        reference = eliminate_duplicates(
            evaluate_rule(
                parse_rule(rule_text),
                {"src": forest},
                mediator.externals,
                check=False,
            )
        )
        assert canonical(engine_view) == canonical(reference)

    @given(record_forests, st.sampled_from(QUERIES))
    @settings(max_examples=60, deadline=None)
    def test_query_matches_query_over_materialized_view(
        self, forest, query_text
    ):
        registry = SourceRegistry(OEMStoreWrapper("src", forest))
        mediator = Mediator(
            "m", "<out {<a A> <b B> | R}> :- <rec {<a A> <b B> | R}>@src",
            registry,
        )
        engine_answer = mediator.answer(query_text)
        view = mediator.export()
        reference = evaluate_rule(
            parse_query(query_text),
            {"m": view, None: view},
            mediator.externals,
            check=False,
        )
        assert canonical(engine_answer) == canonical(reference)

    @given(record_forests)
    @settings(max_examples=40, deadline=None)
    def test_strategies_agree(self, forest):
        answers = {}
        for strategy in ("heuristic", "fetch_all"):
            registry = SourceRegistry(OEMStoreWrapper("src", forest))
            mediator = Mediator(
                "m",
                "<out {<a A> <b B>}> :- <rec {<a A>}>@src AND <rec {<b B>}>@src",
                registry,
                strategy=strategy,
            )
            answers[strategy] = canonical(mediator.export())
        assert answers["heuristic"] == answers["fetch_all"]


class TestViewObjectsSatisfyQueries:
    @given(record_forests, st.integers(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_every_answer_object_matches_the_query_pattern(
        self, forest, needle
    ):
        from repro.msl import match_pattern, parse_pattern

        registry = SourceRegistry(OEMStoreWrapper("src", forest))
        mediator = Mediator(
            "m", "<out {<a A> | R}> :- <rec {<a A> | R}>@src", registry
        )
        answer = mediator.answer(f"X :- X:<out {{<a {needle}>}}>@m")
        check = parse_pattern(f"<out {{<a {needle}>}}>")
        for result in answer:
            assert list(match_pattern(check, result))

    @given(record_forests)
    @settings(max_examples=50, deadline=None)
    def test_answers_are_duplicate_free(self, forest):
        registry = SourceRegistry(OEMStoreWrapper("src", forest))
        mediator = Mediator(
            "m", "<out {<a A> | R}> :- <rec {<a A> | R}>@src", registry
        )
        answer = mediator.answer("X :- X:<out {<a A>}>@m")
        keys = canonical(answer)
        assert len(keys) == len(set(keys))

"""Property: the compiled backend is bit-for-bit the interpretive one.

The equivalence contract of :mod:`repro.msl.compile`
(docs/performance.md): for every pattern, rule, and mediator query,
the compiled closure backend produces the *same* solutions in the
*same* order as the reference matcher/evaluator — same binding
environments, same constructed objects (oids included, because the
oid-generator call sequences coincide), same warnings, same trace
shape, same errors.  Selectivity reordering inside compiled set
matchers must be invisible.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    JOE_CHUNG_QUERY,
    MS1,
    YEAR3_QUERY,
    build_cs_database,
    build_whois_objects,
)
from repro.external.registry import default_registry
from repro.mediator import Mediator
from repro.msl import (
    compile_pattern,
    evaluate_rule,
    evaluate_rule_compiled,
    match_against_forest,
    match_all,
    match_pattern,
    parse_rule,
)
from repro.msl.ast import (
    Const,
    Pattern,
    PatternItem,
    RestSpec,
    SetPattern,
    Var,
)
from repro.msl.bindings import Bindings
from repro.msl.errors import MSLError
from repro.oem.oid import OidGenerator
from repro.reliability import (
    FaultInjectingSource,
    ManualClock,
    ResilienceConfig,
    RetryPolicy,
)
from repro.wrappers import OEMStoreWrapper, RelationalWrapper, SourceRegistry

from .strategies import atom_values, labels, oem_forests, oem_objects

# -- pattern strategies (label-position variables, Rest, descendants) ----

label_terms = st.one_of(
    labels.map(Const),
    st.sampled_from(["L", "X"]).map(Var),  # label-position variables
)
value_vars = st.sampled_from(["X", "Y", "Z", "_"]).map(Var)


@st.composite
def match_patterns(draw, depth: int = 2) -> Pattern:
    label = draw(label_terms)
    choices = [value_vars, atom_values.map(Const)]
    if depth > 1:
        choices.append(set_patterns(depth))
    value = draw(st.one_of(*choices))
    object_var = draw(
        st.one_of(st.none(), st.sampled_from(["O", "_"]).map(Var))
    )
    type_term = draw(
        st.one_of(
            st.none(),
            st.sampled_from(["string", "int", "set"]).map(Const),
            st.just(Var("T")),
        )
    )
    return Pattern(
        label=label, value=value, type=type_term, object_var=object_var
    )


@st.composite
def set_patterns(draw, depth: int) -> SetPattern:
    items = tuple(
        PatternItem(
            draw(match_patterns(depth=depth - 1)),
            descendant=draw(st.booleans()),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    )
    rest = None
    if draw(st.booleans()):
        conditions = tuple(
            draw(
                st.lists(match_patterns(depth=1), min_size=0, max_size=1)
            )
        )
        rest = RestSpec(
            draw(st.sampled_from(["R", "_"]).map(Var)), conditions
        )
    return SetPattern(items, rest)


incoming_bindings = st.dictionaries(
    st.sampled_from(["X", "Y", "L"]), atom_values, max_size=2
).map(Bindings)


def env_keys(envs):
    """Order-sensitive canonical form of a Bindings list."""
    return [env.key() for env in envs]


def outcome_of(thunk):
    """(result, error) of a matcher call, errors canonicalised."""
    try:
        return thunk(), None
    except MSLError as exc:
        return None, (type(exc).__name__, str(exc))


# -- pattern-level equivalence ------------------------------------------


class TestCompiledPatternEquivalence:
    @given(pattern=match_patterns(), obj=oem_objects())
    @settings(max_examples=300, deadline=None)
    def test_match_pattern(self, pattern, obj):
        expected, expected_error = outcome_of(
            lambda: list(match_pattern(pattern, obj))
        )
        compiled = compile_pattern(pattern)
        observed, observed_error = outcome_of(lambda: compiled.match(obj))
        assert observed_error == expected_error
        if expected_error is None:
            assert env_keys(observed) == env_keys(expected)

    @given(
        pattern=match_patterns(),
        forest=oem_forests,
        bindings=incoming_bindings,
        any_level=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_match_against_forest(
        self, pattern, forest, bindings, any_level
    ):
        expected, expected_error = outcome_of(
            lambda: list(
                match_against_forest(
                    pattern, forest, bindings, any_level=any_level
                )
            )
        )
        compiled = compile_pattern(pattern)
        observed, observed_error = outcome_of(
            lambda: compiled.match_forest(
                forest, bindings, any_level=any_level
            )
        )
        assert observed_error == expected_error
        if expected_error is None:
            assert env_keys(observed) == env_keys(expected)

    @given(
        pattern=match_patterns(),
        forest=oem_forests,
        bindings=incoming_bindings,
    )
    @settings(max_examples=150, deadline=None)
    def test_match_all_dedup(self, pattern, forest, bindings):
        expected, expected_error = outcome_of(
            lambda: match_all(pattern, forest, bindings)
        )
        compiled = compile_pattern(pattern)
        observed, observed_error = outcome_of(
            lambda: compiled.match_all(forest, bindings)
        )
        assert observed_error == expected_error
        if expected_error is None:
            assert env_keys(observed) == env_keys(expected)


# -- rule-level equivalence ---------------------------------------------

RULE_TEXTS = [
    # plain field extraction
    "<found N> :- <rec {<a N>}>@s",
    # two direct items (injective assignment + selectivity reorder)
    "<pair N M> :- <rec {<a N> <b M>}>@s",
    # constant direct item reordered ahead of the variable one
    "<hit N> :- <rec {<a N> <b 2>}>@s",
    # Rest variable flowing into the head
    "<keep N R> :- <rec {<a N> | R}>@s",
    # rest-attached condition (non-consuming membership test)
    "<two N> :- <rec {<a N> | R:{<b 2>}}>@s",
    # descendant items at arbitrary depth
    "<deep V> :- <person {.. <name V>}>@s",
    # label-position variable
    "<lab L V> :- <rec {<L V>}>@s",
    # object variable + anonymous rest
    "<whole O> :- O:<rec {<a 1> | _}>@s",
    # comparison scheduled after its binding pattern
    "<small N> :- <rec {<a N>}>@s AND N < 3",
    # self-join through a shared variable
    "<join N> :- <rec {<a N>}>@s AND <rec {<b N>}>@s",
]


@st.composite
def record_forest(draw):
    """Flat records with duplicate field labels to stress injectivity."""
    objs = []
    from repro.oem import atom, obj

    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        fields = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["a", "b", "c"]),
                    st.integers(min_value=0, max_value=3),
                ),
                min_size=0,
                max_size=4,
            )
        )
        objs.append(
            obj("rec", *[atom(name, value) for name, value in fields])
        )
    return objs


class TestCompiledRuleEquivalence:
    @given(
        text=st.sampled_from(RULE_TEXTS),
        records=record_forest(),
        nested=oem_forests,
    )
    @settings(max_examples=200, deadline=None)
    def test_evaluate_rule(self, text, records, nested):
        rule = parse_rule(text)
        forest = records + nested
        forests = {"s": forest, None: forest}
        expected, expected_error = outcome_of(
            lambda: evaluate_rule(
                rule, forests, oidgen=OidGenerator("&v"), check=False
            )
        )
        observed, observed_error = outcome_of(
            lambda: evaluate_rule_compiled(
                rule, forests, oidgen=OidGenerator("&v"), check=False
            )
        )
        assert observed_error == expected_error
        if expected_error is None:
            # bit-for-bit: same objects, same order, same oid sequence
            assert [repr(o) for o in observed] == [
                repr(o) for o in expected
            ]


# -- wrapper- and mediator-level equivalence ----------------------------


def build_mediator(seed, fault_rate=0.0, compile=True, trace=False):
    """A fresh MS1 mediator with its own fault schedule and backend."""
    clock = ManualClock()
    registry = SourceRegistry()
    registry.register(
        FaultInjectingSource(
            OEMStoreWrapper(
                "whois", build_whois_objects(), compile=compile
            ),
            seed=seed,
            fault_rate=fault_rate,
            latency=0.05,
            clock=clock,
        )
    )
    registry.register(
        RelationalWrapper("cs", build_cs_database(), compile=compile)
    )
    return Mediator(
        "med",
        MS1,
        registry,
        default_registry(),
        trace=trace,
        resilience=ResilienceConfig(
            retry=RetryPolicy(max_attempts=8, base_delay=0.01, jitter=0.0),
            breaker_threshold=100,
        ),
        clock=clock,
        compile=compile,
    )


class TestMediatorBackendEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fault_rate=st.floats(min_value=0.0, max_value=0.3),
        query=st.sampled_from([JOE_CHUNG_QUERY, YEAR3_QUERY]),
    )
    @settings(max_examples=10, deadline=None)
    def test_query_bit_for_bit_under_fault_schedules(
        self, seed, fault_rate, query
    ):
        interpretive = build_mediator(
            seed, fault_rate=fault_rate, compile=False, trace=True
        )
        compiled = build_mediator(
            seed, fault_rate=fault_rate, compile=True, trace=True
        )
        expected = interpretive.query(query)
        observed = compiled.query(query)
        # same objects in the same order with the same mediator oids
        assert [repr(o) for o in observed] == [repr(o) for o in expected]
        assert [
            (w.source, w.error) for w in observed.warnings
        ] == [(w.source, w.error) for w in expected.warnings]
        # same plan execution: node for node, row count for row count
        expected_trace = interpretive.last_context.trace
        observed_trace = compiled.last_context.trace
        assert [
            (type(e.node).__name__, len(e.table.rows))
            for e in observed_trace
        ] == [
            (type(e.node).__name__, len(e.table.rows))
            for e in expected_trace
        ]

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_export_bit_for_bit(self, seed):
        interpretive = build_mediator(seed, compile=False)
        compiled = build_mediator(seed, compile=True)
        assert [repr(o) for o in compiled.export()] == [
            repr(o) for o in interpretive.export()
        ]


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))

"""Property-based tests: capability-split soundness, unifier algebra,
and parser robustness under garbage input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msl import (
    Comparison,
    Const,
    MSLError,
    Pattern,
    PatternItem,
    RestSpec,
    SetPattern,
    Var,
    evaluate_comparison,
    match_pattern,
    parse_specification,
)
from repro.msl.bindings import Bindings
from repro.mediator import Unifier
from repro.msl.errors import MSLSyntaxError
from repro.wrappers import Capability

from tests.property.strategies import record_objects


# ---------------------------------------------------------------------------
# capability split soundness: match(original) == match(relaxed)+residual
# ---------------------------------------------------------------------------

FIELDS = ["a", "b", "c", "d"]


@st.composite
def filter_patterns(draw):
    """Patterns over record objects with constant and variable items."""
    items = []
    used = draw(
        st.lists(st.sampled_from(FIELDS), min_size=1, max_size=3, unique=True)
    )
    for name in used:
        if draw(st.booleans()):
            value = Const(draw(st.integers(0, 5)))
        else:
            value = Var(f"V_{name}")
        items.append(PatternItem(Pattern(label=Const(name), value=value)))
    rest = RestSpec(Var("Rest")) if draw(st.booleans()) else None
    return Pattern(label=Const("rec"), value=SetPattern(tuple(items), rest))


@st.composite
def capabilities(draw):
    filterable = draw(
        st.one_of(
            st.none(),
            st.frozensets(st.sampled_from(FIELDS), max_size=4),
        )
    )
    return Capability(filterable_labels=filterable, name="fuzzed")


class TestCapabilitySplitSoundness:
    @given(filter_patterns(), capabilities(), record_objects())
    @settings(max_examples=150, deadline=None)
    def test_relaxed_plus_residual_equals_original(
        self, pattern, capability, obj_
    ):
        relaxed, residual = capability.split(pattern)

        original = {
            env.project(frozenset(name for name in env if not name.startswith("_Cap"))).key()
            for env in match_pattern(pattern, obj_)
        }

        compensated = set()
        for env in match_pattern(relaxed, obj_):
            if all(
                evaluate_comparison(comparison, env)
                for comparison in residual
            ):
                visible = env.project(
                    frozenset(
                        name for name in env if not name.startswith("_Cap")
                    )
                )
                compensated.add(visible.key())
        assert original == compensated

    @given(filter_patterns(), capabilities())
    @settings(max_examples=100, deadline=None)
    def test_relaxed_pattern_is_acceptable(self, pattern, capability):
        relaxed, _ = capability.split(pattern)
        assert capability.accepts(relaxed)

    @given(filter_patterns())
    def test_full_capability_split_is_identity(self, pattern):
        from repro.wrappers import FULL_CAPABILITY

        relaxed, residual = FULL_CAPABILITY.split(pattern)
        assert residual == []
        assert str(relaxed) == str(pattern)


# ---------------------------------------------------------------------------
# unifier algebra
# ---------------------------------------------------------------------------

terms = st.one_of(
    st.builds(Const, st.integers(0, 3)),
    st.builds(Var, st.sampled_from(["X", "Y", "Z"])),
)
var_names = st.sampled_from(["A", "B", "C"])


@st.composite
def unifiers(draw):
    u = Unifier()
    for _ in range(draw(st.integers(0, 3))):
        candidate = u.map_var(draw(var_names), draw(terms))
        if candidate is not None:
            u = candidate
    return u


class TestUnifierLaws:
    @given(unifiers(), unifiers())
    @settings(max_examples=150)
    def test_merge_commutative_up_to_aliasing(self, a, b):
        """Merging in either order succeeds/fails together, binds the
        same constants, and induces the same variable alias classes
        (the representative chosen for an alias class may differ)."""
        left = a.merge(b)
        right = b.merge(a)
        assert (left is None) == (right is None)
        if left is None or right is None:
            return
        names = set(left.mappings) | set(right.mappings)

        def view(u):
            constants = {}
            classes = {}
            for name in names:
                resolved = u.resolve(Var(name))
                if isinstance(resolved, Const):
                    constants[name] = resolved.value
                else:
                    classes.setdefault(resolved.name, set()).add(name)
            # each alias class also contains its representative
            partition = frozenset(
                frozenset(members | {rep})
                for rep, members in classes.items()
            )
            return constants, partition

        assert view(left) == view(right)

    @given(unifiers())
    def test_merge_with_empty_is_identity(self, u):
        merged = Unifier().merge(u)
        assert merged is not None
        for name in u.mappings:
            assert merged.resolve(Var(name)) == u.resolve(Var(name))

    @given(unifiers())
    def test_finalized_is_idempotent(self, u):
        once = u.finalized()
        twice = once.finalized()
        assert str(once) == str(twice)

    @given(unifiers(), var_names)
    def test_resolve_fixpoint(self, u, name):
        resolved = u.resolve(Var(name))
        assert u.resolve(resolved) == resolved


# ---------------------------------------------------------------------------
# parser robustness
# ---------------------------------------------------------------------------


class TestParserRobustness:
    @given(
        st.text(
            alphabet=st.characters(
                codec="ascii", min_codepoint=32, max_codepoint=126
            ),
            max_size=60,
        )
    )
    @settings(max_examples=300)
    def test_garbage_never_crashes_with_foreign_errors(self, text):
        try:
            parse_specification(text)
        except MSLError:
            pass  # the advertised failure mode

    @given(st.text(max_size=40))
    @settings(max_examples=200)
    def test_unicode_garbage(self, text):
        try:
            parse_specification(text)
        except MSLError:
            pass

"""Hypothesis fuzzing of the full MS1 pipeline with randomized sources.

The specification stays the paper's MS1; the *data* is fuzzed: random
people split across whois and cs with controlled overlap, random
irregular extra fields, and random queries.  The invariant is always
the same: the optimized MSI agrees with naive evaluation of the
expanded logical program over full exports.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import MS1
from repro.external import default_registry
from repro.mediator import Mediator
from repro.msl import evaluate_rule, parse_query
from repro.oem import atom, eliminate_duplicates, obj, structural_key
from repro.relational import Attribute, Database, RelationSchema
from repro.wrappers import (
    OEMStoreWrapper,
    RelationalWrapper,
    SourceRegistry,
)

FIRST = ["Ann", "Bob", "Cleo", "Dan"]
LAST = ["Ash", "Birch", "Cole"]


@st.composite
def staff_data(draw):
    """(whois objects, cs rows) over a small shared name pool."""
    people = draw(
        st.lists(
            st.tuples(
                st.sampled_from(FIRST),
                st.sampled_from(LAST),
                st.sampled_from(["employee", "student"]),
                st.booleans(),  # in whois?
                st.booleans(),  # in cs?
                st.booleans(),  # has extra field?
                st.integers(1, 5),  # year
            ),
            max_size=6,
            unique_by=lambda p: (p[0], p[1]),
        )
    )
    whois_objects = []
    employees = []
    students = []
    for first, last, relation, in_whois, in_cs, extra, year in people:
        if in_whois:
            children = [
                atom("name", f"{first} {last}"),
                atom("dept", "CS"),
                atom("relation", relation),
            ]
            if extra:
                children.append(atom("e_mail", f"{first.lower()}@cs"))
            whois_objects.append(obj("person", *children))
        if in_cs:
            if relation == "employee":
                employees.append((first, last, "staff", "Boss"))
            else:
                students.append((first, last, year))
    return whois_objects, employees, students


def build(whois_objects, employees, students):
    registry = SourceRegistry()
    registry.register(OEMStoreWrapper("whois", whois_objects))
    db = Database("cs")
    employee = db.create_table(
        RelationSchema(
            "employee", ["first_name", "last_name", "title", "reports_to"]
        )
    )
    student = db.create_table(
        RelationSchema(
            "student",
            ["first_name", "last_name", Attribute("year", "integer")],
        )
    )
    employee.insert_many(employees)
    student.insert_many(students)
    registry.register(RelationalWrapper("cs", db))
    return Mediator("med", MS1, registry, default_registry())


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


QUERIES = [
    "X :- X:<cs_person {<name N>}>@med",
    "X :- X:<cs_person {<rel 'student'>}>@med",
    "X :- X:<cs_person {<e_mail E>}>@med",
    "X :- X:<cs_person {<year Y>}>@med AND Y >= 3",
    "<who N> :- <cs_person {<name N> <rel R>}>@med AND R != 'student'",
]


class TestMS1Fuzz:
    @given(staff_data(), st.sampled_from(QUERIES))
    @settings(max_examples=50, deadline=None)
    def test_engine_agrees_with_reference(self, data, query_text):
        whois_objects, employees, students = data
        mediator = build(*data)
        engine_answer = mediator.answer(query_text)

        program = mediator.expander.expand(parse_query(query_text))
        forests = {
            "whois": whois_objects,
            "cs": mediator.sources.resolve("cs").export(),
        }
        reference = []
        for logical in program:
            reference.extend(
                evaluate_rule(
                    logical.rule, forests, mediator.externals, check=False
                )
            )
        reference = eliminate_duplicates(reference)
        assert canonical(engine_answer) == canonical(reference)

    @given(staff_data())
    @settings(max_examples=40, deadline=None)
    def test_view_is_join_of_sources(self, data):
        """Every view object's name appears in whois AND its (first,
        last) appears in a matching cs table — MS1's join semantics."""
        whois_objects, employees, students = data
        mediator = build(*data)
        whois_names = {o.get("name") for o in whois_objects}
        cs_names = {
            (f"{first} {last}", "employee")
            for first, last, *_ in employees
        } | {(f"{first} {last}", "student") for first, last, *_ in students}
        for person in mediator.export():
            name = person.get("name")
            rel = person.get("rel")
            assert name in whois_names
            assert (name, rel) in cs_names

    @given(staff_data())
    @settings(max_examples=30, deadline=None)
    def test_pruning_never_changes_answers(self, data):
        query = "X :- X:<cs_person {<e_mail E>}>@med"
        pruned = build(*data)
        unpruned = build(*data)
        unpruned.optimizer.prune_with_facts = False
        assert canonical(pruned.answer(query)) == canonical(
            unpruned.answer(query)
        )

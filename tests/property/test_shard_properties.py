"""Property: sharding never changes what a query means.

The equivalence contract of the sharded source tier
(docs/performance.md): with deterministic shard stores, a run against
``ShardedSource`` — any shard count, any parallelism, semi-join
shipping on or off, Bloom filters forced or not — produces the same
result objects (by structural key) as the unsharded single-wrapper
reference.  Faults absorbed by retries cannot perturb the answer, a
dead shard degrades to warnings plus the other shards' contribution,
and budgets clip identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import probe_keys
from repro.exec import AnswerCache
from repro.external.registry import default_registry
from repro.governor.budget import QueryBudget
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.oem.builders import atom, obj
from repro.reliability import (
    FaultInjectingSource,
    ManualClock,
    ResilienceConfig,
    RetryPolicy,
)
from repro.wrappers import (
    BATCH_CAPABILITY,
    HashPartition,
    OEMStoreWrapper,
    ShardedSource,
    SourceRegistry,
    partition_forest,
    shard_name,
)

SPEC = (
    "<hit {<k K> <p P>}> :- <probe {<key K>}>@driver"
    " AND <rec {<key K> <payload P>}>@big"
)
QUERY = "H :- H:<hit {}>@med"


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def make_records(count, seed):
    return [
        obj("rec", atom("key", k), atom("payload", f"p{seed}_{k}"))
        for k in range(count)
    ]


def build_mediator(
    keys,
    records,
    shards=0,
    dead_shard=None,
    fault_rate=0.0,
    retries=False,
    **kwargs,
):
    """Driver + (possibly sharded, possibly faulty) big source."""
    clock = ManualClock()
    registry = SourceRegistry()
    registry.register(
        OEMStoreWrapper(
            "driver", [obj("probe", atom("key", k)) for k in keys]
        )
    )

    def decorate(wrapper, index):
        if dead_shard is not None and index == dead_shard:
            return FaultInjectingSource(wrapper, dead=True, clock=clock)
        if fault_rate:
            return FaultInjectingSource(
                wrapper, seed=index, fault_rate=fault_rate, clock=clock
            )
        return wrapper

    if shards == 0:
        registry.register(
            decorate(
                OEMStoreWrapper(
                    "big", records, capability=BATCH_CAPABILITY
                ),
                0,
            )
        )
    else:
        partition = HashPartition("key", shards)
        wrappers = [
            decorate(
                OEMStoreWrapper(
                    shard_name("big", index),
                    forest,
                    capability=BATCH_CAPABILITY,
                ),
                index,
            )
            for index, forest in enumerate(
                partition_forest(records, partition)
            )
        ]
        registry.register(ShardedSource("big", wrappers, partition))
    resilience = None
    if retries:
        # deep retry budget: fault_rate <= 0.3 over 8 attempts leaves
        # < 0.01% chance of a fault surfacing, so answers stay
        # schedule-independent
        resilience = ResilienceConfig(
            retry=RetryPolicy(
                max_attempts=8, base_delay=0.01, jitter=0.0
            ),
            breaker_threshold=1000,
        )
    return Mediator(
        "med",
        SPEC,
        registry,
        default_registry(),
        resilience=resilience,
        clock=clock,
        **kwargs,
    )


class TestShardedEqualsUnsharded:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        shards=st.sampled_from([1, 2, 4, 8]),
        parallelism=st.sampled_from([1, 8]),
        semijoin=st.booleans(),
        bloom=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_equivalence(self, seed, shards, parallelism, semijoin, bloom):
        keys = probe_keys(25, 60, seed=seed)
        records = make_records(60, seed)
        reference = build_mediator(keys, records, semijoin=False)
        expected = reference.query(QUERY)
        sharded = build_mediator(
            keys,
            records,
            shards=shards,
            parallelism=parallelism,
            semijoin=semijoin,
            bloom_threshold=1 if bloom else 1_000_000,
        )
        observed = sharded.query(QUERY)
        assert canonical(observed.objects()) == canonical(
            expected.objects()
        )
        assert not observed.warnings
        context = sharded.last_context
        if semijoin:
            # O(shards) batches, never O(tuples) probes
            assert 1 <= context.semijoin_batches <= shards
            assert context.semijoin_probes == len(set(keys))
        else:
            assert context.semijoin_batches == 0
        sharded.close()
        reference.close()

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        shards=st.sampled_from([2, 4]),
        with_cache=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_repeat_runs_with_cache(self, seed, shards, with_cache):
        keys = probe_keys(20, 40, seed=seed)
        records = make_records(40, seed)
        reference = build_mediator(keys, records, semijoin=False)
        expected = canonical(reference.query(QUERY).objects())
        sharded = build_mediator(
            keys,
            records,
            shards=shards,
            parallelism=4,
            cache=AnswerCache(max_entries=128) if with_cache else None,
        )
        for _ in range(2):  # second round exercises cached batches
            assert canonical(sharded.query(QUERY).objects()) == expected
        sharded.close()
        reference.close()

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fault_rate=st.floats(min_value=0.0, max_value=0.3),
        shards=st.sampled_from([2, 4]),
        parallelism=st.sampled_from([1, 8]),
    )
    @settings(max_examples=10, deadline=None)
    def test_masked_fault_schedules(
        self, seed, fault_rate, shards, parallelism
    ):
        keys = probe_keys(15, 30, seed=seed)
        records = make_records(30, seed)
        reference = build_mediator(keys, records, semijoin=False)
        expected = canonical(reference.query(QUERY).objects())
        sharded = build_mediator(
            keys,
            records,
            shards=shards,
            fault_rate=fault_rate,
            retries=True,
            parallelism=parallelism,
        )
        assert canonical(sharded.query(QUERY).objects()) == expected
        sharded.close()
        reference.close()

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        shards=st.sampled_from([2, 4]),
        dead=st.integers(min_value=0, max_value=3),
        parallelism=st.sampled_from([1, 4]),
    )
    @settings(max_examples=10, deadline=None)
    def test_dead_shard_degrades_to_partial(
        self, seed, shards, dead, parallelism
    ):
        dead = dead % shards
        keys = probe_keys(20, 40, seed=seed)
        records = make_records(40, seed)
        healthy = build_mediator(keys, records, shards=shards)
        complete = canonical(healthy.query(QUERY).objects())
        degraded = build_mediator(
            keys,
            records,
            shards=shards,
            dead_shard=dead,
            on_source_failure="degrade",
            parallelism=parallelism,
        )
        results = degraded.query(QUERY)
        partial = canonical(results.objects())
        # the dead shard contributes nothing; everything else survives
        assert set(partial) <= set(complete)
        if partial != complete:
            assert any(
                w.source == shard_name("big", dead)
                for w in results.warnings
            )
        degraded.close()
        healthy.close()

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        shards=st.sampled_from([1, 4]),
        cap=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=10, deadline=None)
    def test_budget_truncation_is_shard_independent(
        self, seed, shards, cap
    ):
        keys = probe_keys(20, 40, seed=seed)
        records = make_records(40, seed)
        budget = QueryBudget(max_result_objects=cap)
        reference = build_mediator(
            keys,
            records,
            semijoin=False,
            budget=budget,
            budget_mode="truncate",
        )
        expected = reference.query(QUERY)
        sharded = build_mediator(
            keys,
            records,
            shards=shards,
            budget=budget,
            budget_mode="truncate",
        )
        observed = sharded.query(QUERY)
        # result order is input-row order on both paths, so the
        # truncated prefix is identical, not just same-sized
        assert canonical(observed.objects()) == canonical(
            expected.objects()
        )
        sharded.close()
        reference.close()

"""Property: EXPLAIN ANALYZE never changes what a query means.

The observation contract of the plan-observability subsystem: an
analyzed run (``explain_analyze``) produces bit-for-bit the same result
objects (by structural key — oids are run-specific) and the same
warnings as the plain ``query`` path, across dataset seeds, parallelism
1 and 8, fusion on and off, and a retry-masked fault schedule.  The
insight recorder only *reads* the rows flowing between operators;
misestimate-driven re-ranking is gated on the misestimate factor, which
is identical in both runs, and only reorders independent nodes within a
stage.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import MS1, build_cs_database, build_whois_objects
from repro.datasets.staff import build_scaled_scenario
from repro.external.registry import default_registry
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.reliability import (
    FaultInjectingSource,
    ManualClock,
    ResilienceConfig,
    RetryPolicy,
)
from repro.wrappers import OEMStoreWrapper, RelationalWrapper, SourceRegistry

FANOUT_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def warning_signatures(warnings):
    return sorted((w.source, w.error) for w in warnings)


def build_faulty_mediator(seed, fault_rate, parallelism, fuse):
    clock = ManualClock()
    registry = SourceRegistry()
    registry.register(
        FaultInjectingSource(
            OEMStoreWrapper("whois", build_whois_objects()),
            seed=seed,
            fault_rate=fault_rate,
            latency=0.05,
            clock=clock,
        )
    )
    registry.register(RelationalWrapper("cs", build_cs_database()))
    return Mediator(
        "med",
        MS1,
        registry,
        default_registry(),
        resilience=ResilienceConfig(
            # deep retry budget: the fault schedule is fully masked, so
            # the answer cannot depend on which attempts failed
            retry=RetryPolicy(max_attempts=8, base_delay=0.01, jitter=0.0),
            breaker_threshold=100,
        ),
        clock=clock,
        parallelism=parallelism,
        fuse=fuse,
    )


class TestAnalyzeEqualsPlain:
    @given(
        people=st.integers(min_value=3, max_value=14),
        seed=st.integers(min_value=0, max_value=10_000),
        parallelism=st.sampled_from([1, 8]),
        fuse=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_scaled_scenarios(self, people, seed, parallelism, fuse):
        scenario = build_scaled_scenario(people, seed=seed)
        plain = scenario.mediator.query(FANOUT_QUERY)
        analyzed_mediator = Mediator(
            "med",
            scenario.mediator.specification,
            scenario.registry,
            scenario.externals,
            register=False,
            parallelism=parallelism,
            fuse=fuse,
        )
        report = analyzed_mediator.explain_analyze(FANOUT_QUERY)
        assert canonical(report.objects) == canonical(plain)
        assert warning_signatures(report.warnings) == warning_signatures(
            plain.warnings
        )
        # the recorder saw the rows the plan actually moved
        assert any(n.calls for n in report.insight.nodes)
        analyzed_mediator.close()

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fault_rate=st.floats(min_value=0.0, max_value=0.3),
        parallelism=st.sampled_from([1, 8]),
        fuse=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_masked_fault_schedules(
        self, seed, fault_rate, parallelism, fuse
    ):
        plain_mediator = build_faulty_mediator(
            seed, fault_rate, parallelism, fuse
        )
        analyzed_mediator = build_faulty_mediator(
            seed, fault_rate, parallelism, fuse
        )
        expected = plain_mediator.query(FANOUT_QUERY)
        report = analyzed_mediator.explain_analyze(FANOUT_QUERY)
        assert canonical(report.objects) == canonical(expected)
        assert warning_signatures(report.warnings) == warning_signatures(
            expected.warnings
        )
        plain_mediator.close()
        analyzed_mediator.close()

"""Unit tests for substitution, head instantiation, and the reference
evaluator."""

import pytest

from repro.external import default_registry
from repro.msl import (
    Bindings,
    Comparison,
    Const,
    EMPTY_BINDINGS,
    MSLInstantiationError,
    MSLSemanticError,
    Var,
    evaluate_comparison,
    evaluate_rule,
    instantiate_head_item,
    instantiate_params_in_pattern,
    parse_pattern,
    parse_rule,
    pattern_variables,
)
from repro.oem import OidGenerator, SemanticOid, atom, obj, parse_oem, to_inline


def env(**values):
    return Bindings(values)


class TestPatternVariables:
    def test_collects_all_slots(self):
        p = parse_pattern("X:<I L T {<a A> | R:{<c C>}}>")
        assert pattern_variables(p) == {"X", "I", "L", "T", "A", "R", "C"}

    def test_anonymous_excluded(self):
        assert pattern_variables(parse_pattern("<a _>")) == set()


class TestParamInstantiation:
    def test_fills_label_and_value(self):
        p = parse_pattern("<$R {<first_name $FN> | Rest2}>")
        filled = instantiate_params_in_pattern(
            p, {"R": "employee", "FN": "Joe"}
        )
        assert str(filled) == "<employee {<first_name 'Joe'> | Rest2}>"

    def test_missing_param_raises(self):
        with pytest.raises(MSLInstantiationError, match="no value"):
            instantiate_params_in_pattern(parse_pattern("<$R {}>"), {})


class TestHeadInstantiation:
    def test_atomic_head(self):
        (o,) = instantiate_head_item(
            parse_pattern("<name N>"), env(N="Joe"), OidGenerator()
        )
        assert (o.label, o.value) == ("name", "Joe")

    def test_set_flattening(self):
        rest = (atom("e_mail", "x@cs"), atom("office", "G4"))
        (o,) = instantiate_head_item(
            parse_pattern("<p {<name N> Rest}>"),
            env(N="Joe", Rest=rest),
            OidGenerator(),
        )
        assert [c.label for c in o.children] == ["name", "e_mail", "office"]

    def test_object_var_in_braces_included(self):
        inner = atom("name", "Joe")
        (o,) = instantiate_head_item(
            parse_pattern("<p {X}>"), env(X=inner), OidGenerator()
        )
        assert o.children[0] == inner

    def test_atom_in_braces_rejected(self):
        with pytest.raises(MSLInstantiationError, match="atom"):
            instantiate_head_item(
                parse_pattern("<p {X}>"), env(X=3), OidGenerator()
            )

    def test_duplicate_children_collapse(self):
        dup = (atom("year", 3),)
        (o,) = instantiate_head_item(
            parse_pattern("<p {A B}>"),
            env(A=dup, B=(atom("year", 3, oid="&z"),)),
            OidGenerator(),
        )
        assert len(o.children) == 1

    def test_bare_head_var_object(self):
        inner = atom("name", "Joe")
        result = instantiate_head_item(Var("X"), env(X=inner), OidGenerator())
        assert result == [inner]

    def test_bare_head_var_set_flattens(self):
        members = (atom("a", 1), atom("b", 2))
        result = instantiate_head_item(Var("X"), env(X=members), OidGenerator())
        assert len(result) == 2

    def test_bare_head_var_atom_rejected(self):
        with pytest.raises(MSLInstantiationError):
            instantiate_head_item(Var("X"), env(X=3), OidGenerator())

    def test_unbound_head_var_rejected(self):
        with pytest.raises(MSLInstantiationError, match="unbound"):
            instantiate_head_item(Var("X"), EMPTY_BINDINGS, OidGenerator())

    def test_label_variable(self):
        (o,) = instantiate_head_item(
            parse_pattern("<R V>"), env(R="student", V=3), OidGenerator()
        )
        assert o.label == "student" and o.value == 3

    def test_non_string_label_rejected(self):
        with pytest.raises(MSLInstantiationError, match="non-string"):
            instantiate_head_item(
                parse_pattern("<R V>"), env(R=3, V=3), OidGenerator()
            )

    def test_semantic_oid_constructed(self):
        (o,) = instantiate_head_item(
            parse_pattern("<&pub(T) publication {<title T>}>"),
            env(T="MedMaker"),
            OidGenerator(),
        )
        assert isinstance(o.oid, SemanticOid)
        assert o.oid == SemanticOid("pub", ["MedMaker"])

    def test_head_rest_spliced(self):
        (o,) = instantiate_head_item(
            parse_pattern("<p {<name N> | R}>"),
            env(N="x", R=(atom("extra", 1),)),
            OidGenerator(),
        )
        assert [c.label for c in o.children] == ["name", "extra"]

    def test_set_var_in_value_slot_makes_set(self):
        (o,) = instantiate_head_item(
            parse_pattern("<wrap V>"),
            env(V=(atom("a", 1),)),
            OidGenerator(),
        )
        assert o.is_set and o.children[0].label == "a"


class TestComparisons:
    def test_all_operators(self):
        cases = [
            ("=", 3, 3, True), ("=", 3, 4, False),
            ("!=", 3, 4, True), ("!=", 3, 3, False),
            ("<", 3, 4, True), ("<=", 3, 3, True),
            (">", 4, 3, True), (">=", 3, 4, False),
        ]
        for op, left, right, expected in cases:
            comp = Comparison(Const(left), op, Const(right))
            assert evaluate_comparison(comp, EMPTY_BINDINGS) is expected

    def test_string_ordering(self):
        comp = Comparison(Const("abc"), "<", Const("abd"))
        assert evaluate_comparison(comp, EMPTY_BINDINGS)

    def test_type_mismatch_is_false_not_error(self):
        comp = Comparison(Const("3"), "<", Const(4))
        assert evaluate_comparison(comp, EMPTY_BINDINGS) is False

    def test_mismatched_equality_is_false(self):
        comp = Comparison(Const("3"), "=", Const(3))
        assert not evaluate_comparison(comp, EMPTY_BINDINGS)

    def test_unbound_operand_raises(self):
        comp = Comparison(Var("X"), "=", Const(3))
        with pytest.raises(MSLSemanticError, match="unbound"):
            evaluate_comparison(comp, EMPTY_BINDINGS)


class TestEvaluateRule:
    @pytest.fixture
    def forest(self):
        return parse_oem(
            """
            <&p1, person, set, {&n1,&y1}>
              <&n1, name, string, 'Ann'>
              <&y1, year, integer, 2>
            <&p2, person, set, {&n2,&y2}>
              <&n2, name, string, 'Bob'>
              <&y2, year, integer, 4>
            """
        )

    def test_basic(self, forest):
        rule = parse_rule("<who N> :- <person {<name N>}>@s")
        result = evaluate_rule(rule, {"s": forest})
        assert sorted(o.value for o in result) == ["Ann", "Bob"]

    def test_comparison_filters(self, forest):
        rule = parse_rule("<who N> :- <person {<name N> <year Y>}>@s AND Y > 3")
        result = evaluate_rule(rule, {"s": forest})
        assert [o.value for o in result] == ["Bob"]

    def test_external_binds(self, forest):
        registry = default_registry()
        registry.declare("upper", ("b", "f"), "to_upper")
        rule = parse_rule(
            "<who U> :- <person {<name N>}>@s AND upper(N, U)"
        )
        result = evaluate_rule(rule, {"s": forest}, registry)
        assert sorted(o.value for o in result) == ["ANN", "BOB"]

    def test_external_check_mode(self, forest):
        registry = default_registry()
        registry.declare("upper", ("b", "f"), "to_upper")
        rule = parse_rule(
            "<who N> :- <person {<name N>}>@s AND upper(N, 'ANN')"
        )
        result = evaluate_rule(rule, {"s": forest}, registry)
        assert [o.value for o in result] == ["Ann"]

    def test_join_across_sources(self):
        left = parse_oem("<&a, l, set, {<&k, k, string, 'x'>}>")
        right = parse_oem("<&b, r, set, {<&k2, k, string, 'x'>}>")
        rule = parse_rule("<m K> :- <l {<k K>}>@left AND <r {<k K>}>@right")
        result = evaluate_rule(rule, {"left": left, "right": right})
        assert [o.value for o in result] == ["x"]

    def test_duplicate_elimination(self):
        forest = parse_oem(
            "<&1, person, set, {<&n, name, string, 'A'>}>"
            "<&2, person, set, {<&m, name, string, 'A'>}>"
        )
        rule = parse_rule("<who N> :- <person {<name N>}>@s")
        assert len(evaluate_rule(rule, {"s": forest})) == 1

    def test_missing_source_raises(self, forest):
        rule = parse_rule("<a X> :- <person {<name X>}>@other")
        with pytest.raises(MSLSemanticError, match="no data supplied"):
            evaluate_rule(rule, {"s": forest})

    def test_unschedulable_external_raises(self, forest):
        registry = default_registry()
        registry.declare("upper", ("b", "f"), "to_upper")
        # 'upper' needs its first argument bound; U and W never get bound
        rule = parse_rule("<a U> :- <person {<name _>}>@s AND upper(W, U)")
        with pytest.raises(MSLSemanticError, match="cannot schedule"):
            evaluate_rule(rule, {"s": forest}, registry)

    def test_empty_result(self, forest):
        rule = parse_rule("<who N> :- <person {<name N> <year 99>}>@s")
        assert evaluate_rule(rule, {"s": forest}) == []

    def test_multi_item_head(self, forest):
        rule = parse_rule(
            "<who N> <age Y> :- <person {<name N> <year Y>}>@s"
        )
        result = evaluate_rule(rule, {"s": forest})
        labels = sorted(o.label for o in result)
        assert labels == ["age", "age", "who", "who"]

    def test_schematic_label_variable(self):
        forest = parse_oem(
            "<&1, employee, set, {<&f, first_name, string, 'Joe'>}>"
        )
        rule = parse_rule("<rel R> :- <R {<first_name _>}>@s")
        result = evaluate_rule(rule, {"s": forest})
        assert [o.value for o in result] == ["employee"]

"""Unit tests for the serving layer: admission control, the adaptive
concurrency limiter, the brownout ladder, and per-source bulkheads."""

import threading

import pytest

from repro.datasets import JOE_CHUNG_QUERY, build_scenario
from repro.mediator import Mediator, MediatorError
from repro.reliability.clock import ManualClock, MonotonicClock
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    AdaptiveConcurrencyLimiter,
    BrownoutConfig,
    BrownoutController,
    BulkheadRegistry,
    BulkheadSaturated,
    DEFAULT_LADDER,
    FixedLimiter,
    QueryRejected,
)
from repro.wrappers import SourceError


class TestQueryRejected:
    def test_carries_structured_fields(self):
        exc = QueryRejected(
            "queue_full", "full", queue_depth=7, retry_after=0.25,
            tenant="t1", priority=3,
        )
        assert exc.reason == "queue_full"
        assert exc.queue_depth == 7
        assert exc.retry_after == 0.25
        assert exc.tenant == "t1"
        assert exc.priority == 3
        assert isinstance(exc, RuntimeError)

    def test_render_includes_reason_depth_and_hint(self):
        text = QueryRejected(
            "deadline", "too slow", queue_depth=4, retry_after=1.5
        ).render()
        assert "deadline" in text
        assert "queue=4" in text
        assert "1.500" in text

    def test_render_without_hint(self):
        text = QueryRejected("closed", "closed").render()
        assert "retry" not in text


class TestAdmissionConfig:
    def test_defaults_valid(self):
        config = AdmissionConfig()
        assert config.max_concurrent == 8
        assert config.max_queue_depth == 32

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_concurrent": 0}, "max_concurrent"),
            ({"max_concurrent": 2.5}, "max_concurrent"),
            ({"max_queue_depth": -1}, "max_queue_depth"),
            ({"queue_timeout": 0.0}, "queue_timeout"),
            ({"min_concurrent": 0}, "min_concurrent"),
            ({"max_concurrent": 2, "min_concurrent": 4}, "min_concurrent"),
            ({"tenant_quota": 0}, "quota"),
            ({"tenant_quotas": {"t": -3}}, "quota"),
            ({"target_latency": -1.0}, "target_latency"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            AdmissionConfig(**kwargs)


class TestAdaptiveLimiter:
    def test_additive_increase_on_fast_completions(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=2, max_limit=8, target_latency=1.0, clock=ManualClock()
        )
        for _ in range(40):
            limiter.observe(0.01)
        assert limiter.limit == 8
        assert limiter.increases > 0

    def test_increase_is_one_slot_per_limit_completions(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=4, max_limit=8, target_latency=1.0, clock=ManualClock()
        )
        limiter.observe(0.01)
        # one fast completion at limit 4 adds 1/4 of a slot
        assert limiter.limit == 4
        assert limiter.stats()["raw_limit"] == 4.25

    def test_multiplicative_decrease_on_slow_completion(self):
        clock = ManualClock()
        limiter = AdaptiveConcurrencyLimiter(
            initial=10, target_latency=0.1, clock=clock
        )
        limiter.observe(0.5)
        assert limiter.limit == 7  # 10 * 0.7

    def test_cooldown_rate_limits_decreases(self):
        clock = ManualClock()
        limiter = AdaptiveConcurrencyLimiter(
            initial=10, target_latency=0.1, cooldown=1.0, clock=clock
        )
        limiter.observe(0.5)
        limiter.observe(0.5)  # within cooldown: no second cut
        assert limiter.limit == 7
        clock.advance(1.0)
        limiter.observe(0.5)
        assert limiter.limit == 4  # 7 * 0.7
        assert limiter.decreases == 2

    def test_failure_counts_as_slow(self):
        limiter = AdaptiveConcurrencyLimiter(initial=10, clock=ManualClock())
        limiter.observe(0.01, ok=False)
        assert limiter.limit == 7

    def test_limit_never_below_min(self):
        clock = ManualClock()
        limiter = AdaptiveConcurrencyLimiter(
            initial=4, min_limit=2, target_latency=0.1,
            cooldown=0.0, clock=clock,
        )
        for _ in range(20):
            limiter.observe(1.0)
            clock.advance(1.0)
        assert limiter.limit == 2

    def test_baseline_snaps_down_and_drifts_up(self):
        limiter = AdaptiveConcurrencyLimiter(initial=4, clock=ManualClock())
        limiter.observe(0.2)
        limiter.observe(0.05)  # new minimum: snap
        assert limiter.baseline == 0.05
        limiter.observe(0.10)  # slower: drift, not snap
        assert 0.05 < limiter.baseline < 0.06

    def test_relative_target_uses_tolerance_times_baseline(self):
        clock = ManualClock()
        limiter = AdaptiveConcurrencyLimiter(
            initial=10, tolerance=2.0, clock=clock
        )
        limiter.observe(0.1)   # establishes the baseline
        limiter.observe(0.15)  # < 2x baseline: fast
        assert limiter.decreases == 0
        clock.advance(1.0)
        limiter.observe(0.5)   # > 2x baseline: slow
        assert limiter.decreases == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial": 0},
            {"initial": 4, "min_limit": 0},
            {"initial": 4, "min_limit": 6},
            {"initial": 9, "max_limit": 8},
            {"initial": 4, "min_limit": 3, "max_limit": 2},
            {"initial": 4, "backoff": 1.0},
            {"initial": 4, "tolerance": 0.5},
            {"initial": 4, "target_latency": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(**kwargs)

    def test_describe_and_stats(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=4, max_limit=8, clock=ManualClock()
        )
        limiter.observe(0.05)
        assert "limit=4" in limiter.describe()
        stats = limiter.stats()
        assert stats["observations"] == 1
        assert stats["baseline_s"] == 0.05

    def test_fixed_limiter_never_moves(self):
        limiter = FixedLimiter(3)
        for latency in (0.001, 5.0, 100.0):
            limiter.observe(latency, ok=False)
        assert limiter.limit == 3
        assert limiter.stats()["observations"] == 3
        assert "fixed" in limiter.describe()
        with pytest.raises(ValueError):
            FixedLimiter(0)


class TestBrownout:
    def test_escalates_one_rung_per_high_observation(self):
        brownout = BrownoutController(clock=ManualClock())
        assert brownout.observe(0.9) == 1
        assert brownout.observe(1.0) == 2
        assert brownout.level == 2
        assert brownout.shed_features() == ("hedging", "tracing")

    def test_level_capped_at_ladder_length(self):
        brownout = BrownoutController(clock=ManualClock())
        for _ in range(10):
            brownout.observe(1.0)
        assert brownout.level == len(DEFAULT_LADDER)
        assert brownout.max_level == len(DEFAULT_LADDER)

    def test_allows_respects_ladder_order(self):
        brownout = BrownoutController(clock=ManualClock())
        brownout.observe(1.0)
        assert not brownout.allows("hedging")
        assert brownout.allows("tracing")
        assert brownout.allows("parallelism")
        assert brownout.allows("not-a-feature")

    def test_recovery_needs_continuous_calm_for_hold(self):
        clock = ManualClock()
        brownout = BrownoutController(
            BrownoutConfig(hold=1.0), clock=clock
        )
        brownout.observe(1.0)
        brownout.observe(1.0)
        assert brownout.level == 2
        brownout.observe(0.0)        # calm starts
        clock.advance(0.5)
        brownout.observe(0.0)        # not calm long enough yet
        assert brownout.level == 2
        clock.advance(0.6)
        brownout.observe(0.0)        # 1.1s of calm: one rung down
        assert brownout.level == 1
        assert brownout.recoveries == 1

    def test_mid_pressure_resets_the_calm_timer(self):
        clock = ManualClock()
        brownout = BrownoutController(
            BrownoutConfig(hold=1.0), clock=clock
        )
        brownout.observe(1.0)
        brownout.observe(0.0)
        clock.advance(0.9)
        brownout.observe(0.5)        # neither calm nor pressure: resets
        clock.advance(0.9)
        brownout.observe(0.0)        # calm restarts here
        assert brownout.level == 1
        clock.advance(1.1)
        brownout.observe(0.0)
        assert brownout.level == 0

    def test_stats_and_describe(self):
        brownout = BrownoutController(clock=ManualClock())
        brownout.observe(1.0)
        stats = brownout.stats()
        assert stats["level"] == 1
        assert stats["shed"] == ["hedging"]
        assert "brownout level 1/4" in brownout.describe()
        assert brownout.active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"high_water": 0.0},
            {"high_water": 1.5},
            {"low_water": 0.8, "high_water": 0.5},
            {"hold": -1.0},
            {"ladder": ()},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            BrownoutConfig(**kwargs)


class TestBulkheads:
    def test_permit_bounds_concurrency(self):
        bulkheads = BulkheadRegistry(max_per_source=1)
        with bulkheads.permit("whois"):
            with pytest.raises(BulkheadSaturated) as info:
                with bulkheads.permit("whois"):
                    pass
        assert info.value.source == "whois"
        assert info.value.limit == 1
        # the permit was returned: the source is usable again
        with bulkheads.permit("whois"):
            pass
        assert bulkheads.total_saturations == 1

    def test_sources_are_isolated(self):
        bulkheads = BulkheadRegistry(max_per_source=1)
        with bulkheads.permit("whois"):
            with bulkheads.permit("cs"):  # a different source: fine
                pass

    def test_per_source_limit_overrides(self):
        bulkheads = BulkheadRegistry(max_per_source=1, limits={"cs": 2})
        with bulkheads.permit("cs"), bulkheads.permit("cs"):
            with pytest.raises(BulkheadSaturated):
                with bulkheads.permit("cs"):
                    pass

    def test_saturation_is_a_source_error(self):
        assert issubclass(BulkheadSaturated, SourceError)

    def test_stats_track_peak_and_acquired(self):
        bulkheads = BulkheadRegistry(max_per_source=4)
        with bulkheads.permit("cs"), bulkheads.permit("cs"):
            pass
        stats = bulkheads.stats()["cs"]
        assert stats == {
            "limit": 4, "active": 0, "peak": 2,
            "acquired": 2, "saturations": 0,
        }
        assert "cs" in bulkheads.describe()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_per_source": 0},
            {"max_wait": -1.0},
            {"limits": {"cs": 0}},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BulkheadRegistry(**kwargs)


def _controller(clock=None, **kwargs):
    return AdmissionController(
        AdmissionConfig(**kwargs), clock=clock or ManualClock()
    )


class TestAdmissionController:
    def test_immediate_admission_under_limit(self):
        controller = _controller(max_concurrent=2)
        ticket = controller.admit(tenant="t1")
        assert ticket.waited == 0.0
        assert controller.inflight == 1
        ticket.complete()
        assert controller.inflight == 0
        snapshot = controller.snapshot()
        assert snapshot["submitted"] == snapshot["admitted"] == 1
        assert snapshot["completed"] == 1

    def test_complete_is_idempotent(self):
        controller = _controller(max_concurrent=2)
        ticket = controller.admit()
        ticket.complete()
        ticket.complete()
        assert controller.snapshot()["completed"] == 1

    def test_queue_full_sheds_with_depth_and_hint(self):
        controller = _controller(
            max_concurrent=1, max_queue_depth=0, adaptive=False
        )
        controller.admit()
        with pytest.raises(QueryRejected) as info:
            controller.admit(tenant="t2", priority=5)
        exc = info.value
        assert exc.reason == "queue_full"
        assert exc.tenant == "t2"
        assert exc.priority == 5
        assert controller.shed == 1

    def test_tenant_quota_sheds_noisy_tenant_only(self):
        controller = _controller(
            max_concurrent=4, tenant_quota=1, adaptive=False
        )
        controller.admit(tenant="noisy")
        with pytest.raises(QueryRejected) as info:
            controller.admit(tenant="noisy")
        assert info.value.reason == "tenant"
        controller.admit(tenant="quiet")  # others unaffected

    def test_tenant_quota_overrides(self):
        controller = _controller(
            max_concurrent=8, tenant_quota=1,
            tenant_quotas={"big": 3}, adaptive=False,
        )
        controller.admit(tenant="big")
        controller.admit(tenant="big")
        controller.admit(tenant="big")
        with pytest.raises(QueryRejected):
            controller.admit(tenant="big")

    def test_deadline_shed_when_predicted_wait_exceeds_budget(self):
        clock = ManualClock()
        controller = _controller(
            clock=clock, max_concurrent=1, adaptive=False
        )
        ticket = controller.admit()
        clock.advance(2.0)           # the query runs for 2 seconds
        ticket.complete()            # service EWMA is now ~2s
        blocker = controller.admit()
        with pytest.raises(QueryRejected) as info:
            # predicted wait ~2s against a 0.1s remaining budget
            controller.admit(deadline=0.1)
        exc = info.value
        assert exc.reason == "deadline"
        assert exc.retry_after is not None and exc.retry_after > 0.1
        blocker.complete()

    def test_queue_timeout_sheds_after_real_wait(self):
        controller = AdmissionController(
            AdmissionConfig(
                max_concurrent=1, queue_timeout=0.05, adaptive=False
            ),
            clock=MonotonicClock(),
        )
        controller.admit()
        with pytest.raises(QueryRejected) as info:
            controller.admit()
        assert info.value.reason == "timeout"
        assert controller.snapshot()["queue_depth"] == 0

    def test_waiter_admitted_when_slot_frees(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrent=1, adaptive=False),
            clock=MonotonicClock(),
        )
        first = controller.admit()
        admitted = []

        def waiter():
            ticket = controller.admit()
            admitted.append(ticket)
            ticket.complete()

        thread = threading.Thread(target=waiter)
        thread.start()
        while controller.queue_depth == 0:  # until the waiter queues
            pass
        first.complete()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(admitted) == 1
        snapshot = controller.snapshot()
        assert snapshot["admitted"] == snapshot["completed"] == 2
        assert snapshot["queue_wait_total_s"] > 0.0

    def test_higher_priority_admitted_first(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrent=1, adaptive=False),
            clock=MonotonicClock(),
        )
        first = controller.admit()
        order = []
        lock = threading.Lock()

        def waiter(priority):
            ticket = controller.admit(priority=priority)
            with lock:
                order.append(priority)
            # hold the slot briefly so admissions serialize
            ticket.complete()

        low = threading.Thread(target=waiter, args=(1,))
        low.start()
        while controller.queue_depth < 1:
            pass
        high = threading.Thread(target=waiter, args=(9,))
        high.start()
        while controller.queue_depth < 2:
            pass
        first.complete()
        low.join(timeout=5.0)
        high.join(timeout=5.0)
        assert order[0] == 9, order

    def test_close_sheds_new_arrivals(self):
        controller = _controller(max_concurrent=2)
        controller.close()
        controller.close()  # idempotent
        assert controller.closed
        with pytest.raises(QueryRejected) as info:
            controller.admit()
        assert info.value.reason == "closed"

    def test_close_wakes_queued_waiters_as_shed(self):
        controller = AdmissionController(
            AdmissionConfig(max_concurrent=1, adaptive=False),
            clock=MonotonicClock(),
        )
        controller.admit()
        rejections = []

        def waiter():
            try:
                controller.admit()
            except QueryRejected as exc:
                rejections.append(exc.reason)

        thread = threading.Thread(target=waiter)
        thread.start()
        while controller.queue_depth == 0:
            pass
        controller.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert rejections == ["closed"]

    def test_accounting_balances(self):
        controller = _controller(
            max_concurrent=1, max_queue_depth=0, adaptive=False
        )
        ticket = controller.admit()
        for _ in range(3):
            with pytest.raises(QueryRejected):
                controller.admit()
        ticket.complete()
        snapshot = controller.snapshot()
        assert snapshot["submitted"] == 4
        assert snapshot["submitted"] == (
            snapshot["admitted"] + snapshot["shed"]
        )
        assert snapshot["admitted"] == snapshot["completed"]
        assert snapshot["rejected"] == {"queue_full": 3}

    def test_sheds_drive_brownout(self):
        controller = _controller(
            max_concurrent=1, max_queue_depth=0, adaptive=False
        )
        controller.admit()
        for _ in range(4):
            with pytest.raises(QueryRejected):
                controller.admit()
        assert controller.brownout is not None
        assert controller.brownout.level == len(DEFAULT_LADDER)

    def test_brownout_disabled_by_config(self):
        controller = _controller(max_concurrent=2, brownout=False)
        assert controller.brownout is None
        assert "brownout" not in controller.snapshot()

    def test_adaptive_flag_picks_limiter(self):
        assert isinstance(
            _controller(max_concurrent=4).limiter,
            AdaptiveConcurrencyLimiter,
        )
        assert isinstance(
            _controller(max_concurrent=4, adaptive=False).limiter,
            FixedLimiter,
        )

    def test_describe_mentions_traffic(self):
        controller = _controller(max_concurrent=2)
        controller.admit().complete()
        text = controller.describe()
        assert "1 submitted" in text
        assert "limiter:" in text


def _mediator(**kwargs):
    scenario = build_scenario(push_mode="needed")
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        push_mode="needed",
        register=False,
        **kwargs,
    )


class TestMediatorServing:
    def test_admission_true_uses_defaults(self):
        mediator = _mediator(admission=True)
        try:
            assert mediator.admission is not None
            assert mediator.admission.config.max_concurrent == 8
            assert len(mediator.answer(JOE_CHUNG_QUERY)) == 1
        finally:
            mediator.close()

    def test_query_accepts_tenant_and_priority(self):
        with _mediator(admission=AdmissionConfig(max_concurrent=2)) as med:
            results = med.query(JOE_CHUNG_QUERY, tenant="t1", priority=5)
            assert len(results) == 1
            assert list(results.warnings) == []
            serving = med.health_snapshot()["serving"]
            assert serving["admitted"] == 1
            assert serving["completed"] == 1

    def test_health_snapshot_has_no_serving_key_without_admission(self):
        mediator = _mediator()
        try:
            assert "serving" not in mediator.health_snapshot()
        finally:
            mediator.close()

    def test_explain_includes_serving_section(self):
        with _mediator(admission=True) as med:
            text = med.explain(JOE_CHUNG_QUERY)
            assert "-- serving --" in text
            assert "admission:" in text

    def test_metrics_include_admission_series(self):
        with _mediator(admission=True) as med:
            med.answer(JOE_CHUNG_QUERY)
            text = med.metrics_text()
            assert "repro_admission_submitted_total 1" in text
            assert "repro_admission_admitted_total 1" in text
            assert "repro_admission_queue_depth 0" in text

    def test_close_is_idempotent_and_context_manager_closes(self):
        mediator = _mediator(admission=True)
        with mediator as med:
            assert med is mediator
        assert mediator.closed
        mediator.close()  # second close is a no-op
        assert mediator.admission.closed

    def test_closed_mediator_sheds_structured_with_admission(self):
        mediator = _mediator(admission=True)
        mediator.close()
        with pytest.raises(QueryRejected) as info:
            mediator.answer(JOE_CHUNG_QUERY)
        assert info.value.reason == "closed"

    def test_closed_mediator_errors_without_admission(self):
        mediator = _mediator()
        mediator.close()
        with pytest.raises(MediatorError, match="closed"):
            mediator.answer(JOE_CHUNG_QUERY)

    def test_int_bulkheads_shorthand(self):
        with _mediator(bulkheads=2) as med:
            assert med.dispatcher.bulkheads.max_per_source == 2
            assert len(med.answer(JOE_CHUNG_QUERY)) == 1

    def test_rejections_surface_queue_depth(self):
        config = AdmissionConfig(
            max_concurrent=1, max_queue_depth=0, adaptive=False
        )
        with _mediator(admission=config) as med:
            ticket = med.admission.admit()  # occupy the only slot
            try:
                with pytest.raises(QueryRejected) as info:
                    med.answer(JOE_CHUNG_QUERY)
                assert info.value.reason == "queue_full"
                assert med.health_snapshot()["serving"]["shed"] == 1
            finally:
                ticket.complete()

"""Unit tests for the mini relational engine."""

import pytest

from repro.relational import (
    Attribute,
    Database,
    IntegrityError,
    RelationSchema,
    SchemaError,
    Selection,
    Table,
    project,
    select,
)


def employee_schema():
    return RelationSchema(
        "employee", ["first_name", "last_name", "title", "reports_to"]
    )


class TestSchema:
    def test_attribute_types(self):
        assert Attribute("year", "integer").admits(3)
        assert not Attribute("year", "integer").admits("3")
        assert Attribute("year", "integer").admits(None)  # NULL fits

    def test_boolean_strictness(self):
        assert not Attribute("year", "integer").admits(True)
        assert Attribute("flag", "boolean").admits(True)

    def test_bad_attribute_name(self):
        with pytest.raises(SchemaError):
            Attribute("first name")

    def test_bad_attribute_type(self):
        with pytest.raises(SchemaError):
            Attribute("x", "varchar")

    def test_schema_positions(self):
        schema = employee_schema()
        assert schema.position("last_name") == 1
        assert schema.arity == 4
        with pytest.raises(SchemaError):
            schema.position("ghost")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema("r", ["a", "a"])

    def test_key_must_exist(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ["a"], key=["b"])

    def test_validate_tuple(self):
        schema = RelationSchema("r", [Attribute("n", "integer")])
        schema.validate_tuple((3,))
        with pytest.raises(SchemaError):
            schema.validate_tuple(("x",))
        with pytest.raises(SchemaError, match="arity"):
            schema.validate_tuple((1, 2))

    def test_with_and_without_attribute(self):
        schema = RelationSchema("r", ["a"])
        grown = schema.with_attribute("b")
        assert grown.attribute_names == ("a", "b")
        shrunk = grown.without_attribute("a")
        assert shrunk.attribute_names == ("b",)


class TestTable:
    def test_insert_positional_and_named(self):
        table = Table(RelationSchema("r", ["a", "b"]))
        table.insert("x", "y")
        table.insert(b="q", a="p")
        assert table.rows() == [("x", "y"), ("p", "q")]

    def test_insert_mixed_rejected(self):
        table = Table(RelationSchema("r", ["a", "b"]))
        with pytest.raises(SchemaError):
            table.insert("x", b="y")

    def test_key_uniqueness(self):
        table = Table(RelationSchema("r", ["a", "b"], key=["a"]))
        table.insert("k", "v1")
        with pytest.raises(IntegrityError):
            table.insert("k", "v2")

    def test_row_dicts(self):
        table = Table(RelationSchema("r", ["a"]))
        table.insert("x")
        assert list(table.row_dicts()) == [{"a": "x"}]

    def test_delete_where(self):
        table = Table(RelationSchema("r", [Attribute("n", "integer")]))
        table.insert_many([(1,), (2,), (3,)])
        removed = table.delete_where(lambda row: row["n"] > 1)
        assert removed == 2
        assert table.rows() == [(1,)]

    def test_add_attribute_pads_existing(self):
        table = Table(RelationSchema("r", ["a"]))
        table.insert("x")
        table.add_attribute("birthday")
        assert table.rows() == [("x", None)]
        table.insert("y", "1970-01-01")
        assert len(table) == 2

    def test_add_attribute_bad_default(self):
        table = Table(RelationSchema("r", ["a"]))
        with pytest.raises(SchemaError):
            table.add_attribute(Attribute("n", "integer"), default="zero")

    def test_drop_attribute(self):
        table = Table(RelationSchema("r", ["a", "b"]))
        table.insert("x", "y")
        table.drop_attribute("a")
        assert table.schema.attribute_names == ("b",)
        assert table.rows() == [("y",)]


class TestQueries:
    @pytest.fixture
    def table(self):
        t = Table(
            RelationSchema(
                "student",
                ["first_name", "last_name", Attribute("year", "integer")],
            )
        )
        t.insert_many(
            [("Nick", "Naive", 3), ("Amy", "Ace", 1), ("Bo", "Best", 3)]
        )
        return t

    def test_select_equality(self, table):
        rows = list(select(table, [Selection("year", "=", 3)]))
        assert len(rows) == 2

    def test_select_conjunction(self, table):
        rows = list(
            select(
                table,
                [Selection("year", "=", 3), Selection("first_name", "=", "Bo")],
            )
        )
        assert rows == [("Bo", "Best", 3)]

    def test_select_ordering_ops(self, table):
        assert len(list(select(table, [Selection("year", ">", 1)]))) == 2
        assert len(list(select(table, [Selection("year", "<=", 3)]))) == 3

    def test_select_type_mismatch_empty(self, table):
        assert list(select(table, [Selection("year", ">", "one")])) == []

    def test_null_never_compares(self):
        t = Table(RelationSchema("r", [Attribute("n", "integer")]))
        t.insert(None)
        assert list(select(t, [Selection("n", ">", 0)])) == []
        assert list(select(t, [Selection("n", "=", None)])) == [(None,)]

    def test_unknown_operator(self):
        with pytest.raises(SchemaError):
            Selection("a", "~", 1)

    def test_project(self, table):
        rows = list(project(table, ["last_name"]))
        assert rows == [("Naive",), ("Ace",), ("Best",)]

    def test_project_selected_rows(self, table):
        selected = select(table, [Selection("year", "=", 3)])
        rows = list(project(table, ["first_name"], selected))
        assert rows == [("Nick",), ("Bo",)]


class TestDatabase:
    def test_catalog(self):
        db = Database("cs")
        db.create_table(employee_schema())
        assert db.has_table("employee")
        assert db.table_names() == ["employee"]
        with pytest.raises(SchemaError, match="already exists"):
            db.create_table(employee_schema())

    def test_missing_table(self):
        with pytest.raises(SchemaError, match="no table"):
            Database("cs").table("ghost")

    def test_drop_table(self):
        db = Database("cs")
        db.create_table(employee_schema())
        db.drop_table("employee")
        assert not db.has_table("employee")
        with pytest.raises(SchemaError):
            db.drop_table("employee")

    def test_load(self):
        db = Database("cs")
        db.create_table(RelationSchema("r", ["a"]))
        assert db.load("r", [("x",), ("y",)]) == 2
        assert len(db.table("r")) == 2

"""Unit tests for the cost-based optimizer and the statistics store."""

import pytest

from repro.datasets import (
    WHOIS_LIMITED_CAPABILITY,
    build_scenario,
)
from repro.mediator import (
    CostBasedOptimizer,
    ExecutionContext,
    DatamergeEngine,
    FilterNode,
    JoinNode,
    LogicalRule,
    ParameterizedQueryNode,
    PlanningError,
    QueryNode,
    SourceStatistics,
)
from repro.mediator.statistics import count_constant_conditions
from repro.msl import parse_pattern, parse_rule


RULE = parse_rule(
    """
    <cs_person {<name N> <rel R> Rest1 Rest2}> :-
        <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
        AND decomp(N, LN, FN)
        AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    """
)


@pytest.fixture
def scenario():
    return build_scenario()


def node_kinds(plan):
    return [type(node).__name__ for node in plan.nodes()]


class TestCountConstantConditions:
    def test_counts_label_and_values(self):
        p = parse_pattern("<person {<name 'Joe'> <dept 'CS'> <rel R>}>")
        # top label + two constant values + two constant sub-labels... the
        # metric counts constant labels and values at each level
        assert count_constant_conditions(p) >= 3

    def test_more_conditions_scores_higher(self):
        sparse = parse_pattern("<person {<name N>}>")
        dense = parse_pattern("<person {<name 'J'> <dept 'CS'>}>")
        assert count_constant_conditions(dense) > count_constant_conditions(
            sparse
        )


class TestHeuristicPlanning:
    def test_paper_plan_shape(self, scenario):
        optimizer = CostBasedOptimizer(scenario.registry)
        optimizer.bind_external_registry(scenario.mediator.externals)
        plan = optimizer.plan_rule(LogicalRule(RULE))
        kinds = node_kinds(plan)
        # the Section 3.1 plan: query -> extract -> external ->
        # param-query -> extract -> construct
        assert kinds == [
            "QueryNode",
            "ExtractorNode",
            "ExternalPredNode",
            "ParameterizedQueryNode",
            "ExtractorNode",
            "ConstructorNode",
        ]

    def test_whois_first_by_heuristic(self, scenario):
        # whois pattern has more constant conditions (dept 'CS') than the
        # cs pattern, so it is the outer pattern
        optimizer = CostBasedOptimizer(scenario.registry)
        optimizer.bind_external_registry(scenario.mediator.externals)
        plan = optimizer.plan_rule(LogicalRule(RULE))
        first_query = [n for n in plan.nodes() if isinstance(n, QueryNode)][0]
        assert first_query.source == "whois"

    def test_param_query_targets_cs(self, scenario):
        optimizer = CostBasedOptimizer(scenario.registry)
        optimizer.bind_external_registry(scenario.mediator.externals)
        plan = optimizer.plan_rule(LogicalRule(RULE))
        (pq,) = [
            n for n in plan.nodes() if isinstance(n, ParameterizedQueryNode)
        ]
        assert pq.source == "cs"
        assert set(pq.param_columns) == {"R", "LN", "FN"}

    def test_unknown_strategy_rejected(self, scenario):
        with pytest.raises(PlanningError):
            CostBasedOptimizer(scenario.registry, strategy="magic")

    def test_rule_without_patterns_rejected(self, scenario):
        optimizer = CostBasedOptimizer(scenario.registry)
        rule = parse_rule("<a X> :- <b X>@s AND X > 1")
        comparison_only = LogicalRule(
            parse_rule("<a X> :- <b X>@s AND X > 1").__class__(
                rule.head, tuple(c for c in rule.tail if not hasattr(c, "pattern"))
            )
        )
        with pytest.raises(PlanningError, match="no source patterns"):
            optimizer.plan_rule(comparison_only)

    def test_missing_source_annotation_rejected(self, scenario):
        optimizer = CostBasedOptimizer(scenario.registry)
        with pytest.raises(PlanningError, match="lacks a source"):
            optimizer.plan_rule(LogicalRule(parse_rule("<a X> :- <b X>")))

    def test_unschedulable_external(self, scenario):
        optimizer = CostBasedOptimizer(scenario.registry)
        optimizer.bind_external_registry(scenario.mediator.externals)
        rule = parse_rule("<a X> :- <person {<name X>}>@whois AND decomp(Q, W, E)")
        with pytest.raises(PlanningError, match="cannot be scheduled"):
            optimizer.plan_rule(LogicalRule(rule))


class TestFetchAllPlanning:
    def test_uses_joins_not_param_queries(self, scenario):
        optimizer = CostBasedOptimizer(scenario.registry, strategy="fetch_all")
        optimizer.bind_external_registry(scenario.mediator.externals)
        plan = optimizer.plan_rule(LogicalRule(RULE))
        kinds = node_kinds(plan)
        assert "JoinNode" in kinds
        assert "ParameterizedQueryNode" not in kinds

    def test_same_answers_as_bind_join(self, scenario):
        results = {}
        for strategy in ("heuristic", "fetch_all"):
            optimizer = CostBasedOptimizer(
                scenario.registry, strategy=strategy
            )
            optimizer.bind_external_registry(scenario.mediator.externals)
            plan = optimizer.plan_rule(LogicalRule(RULE))
            context = ExecutionContext(
                sources=scenario.registry,
                externals=scenario.mediator.externals,
            )
            objects = DatamergeEngine().execute_to_objects(plan, context)
            results[strategy] = sorted(str(o) for o in objects)
        # oids differ; compare label/value structure text without oids
        import re

        def strip_oids(texts):
            return [re.sub(r"&[\w.]+", "&", t) for t in texts]

        assert strip_oids(results["heuristic"]) == strip_oids(
            results["fetch_all"]
        )


class TestCapabilityCompensation:
    def test_residual_filter_node_added(self):
        scenario = build_scenario(whois_capability=WHOIS_LIMITED_CAPABILITY)
        optimizer = CostBasedOptimizer(scenario.registry)
        optimizer.bind_external_registry(scenario.mediator.externals)
        rule = parse_rule(
            "<p {<name N>}> :- "
            "<person {<name N> <dept 'CS'> | R:{<year 3>}}>@whois"
        )
        plan = optimizer.plan_rule(LogicalRule(rule))
        assert any(isinstance(n, FilterNode) for n in plan.nodes())
        # and the shipped query no longer contains the year constant
        (q,) = [n for n in plan.nodes() if isinstance(n, QueryNode)]
        assert "<year 3>" not in str(q.query)

    def test_compensated_plan_correct(self):
        scenario = build_scenario(whois_capability=WHOIS_LIMITED_CAPABILITY)
        result = scenario.mediator.answer(
            "S :- S:<cs_person {<year 3>}>@med"
        )
        assert len(result) == 1
        assert result[0].get("name") == "Nick Naive"


class TestStatistics:
    def test_default_estimate(self):
        stats = SourceStatistics()
        assert stats.estimate("s", parse_pattern("<person {}>")) > 0

    def test_feedback_changes_estimate(self):
        stats = SourceStatistics()
        pattern = parse_pattern("<person {<name N>}>")
        before = stats.estimate("s", pattern)
        stats.record_label("s", "person", 2)
        after = stats.estimate("s", pattern)
        assert after < before

    def test_record_normalises_by_selectivity(self):
        stats = SourceStatistics(selectivity=0.5)
        filtered = parse_pattern("<person {<dept 'CS'>}>")
        stats.record("s", filtered, 10)
        # base cardinality should be scaled back up
        assert stats.base_cardinality("s", "person") > 10

    def test_moving_average(self):
        stats = SourceStatistics()
        stats.record_label("s", "person", 100)
        stats.record_label("s", "person", 0)
        assert 0 < stats.base_cardinality("s", "person") < 100

    def test_variable_label_uses_default(self):
        stats = SourceStatistics()
        assert (
            stats.estimate("s", parse_pattern("<L {<a A>}>"))
            <= stats.default_cardinality
        )

    def test_clear(self):
        stats = SourceStatistics()
        stats.record_label("s", "person", 5)
        stats.clear()
        assert not stats.has_observations("s", "person")

    def test_statistics_strategy_orders_by_cardinality(self, scenario):
        stats = SourceStatistics()
        stats.record_label("whois", "person", 100000)
        # whois estimate: 100000 * 0.1 (one constant) >> cs default 100,
        # so the statistics strategy flips the order: cs goes first
        optimizer = CostBasedOptimizer(
            scenario.registry, statistics=stats, strategy="statistics"
        )
        optimizer.bind_external_registry(scenario.mediator.externals)
        plan = optimizer.plan_rule(LogicalRule(RULE))
        first_query = [n for n in plan.nodes() if isinstance(n, QueryNode)][0]
        assert first_query.source == "cs"

    def test_engine_feeds_statistics(self, scenario):
        med = scenario.mediator
        med.answer("X :- X:<cs_person {<name 'Joe Chung'>}>@med")
        assert med.statistics.has_observations("whois", "person")


class TestSampling:
    """Section 3.5's 'sampling' half of the statistics database."""

    def test_sample_source_records_labels(self, scenario):
        stats = SourceStatistics()
        examined = stats.sample_source(scenario.whois)
        assert examined == 2
        assert stats.has_observations("whois", "person")
        assert stats.base_cardinality("whois", "person") == 2

    def test_sample_with_limit_scales_up(self):
        from repro.datasets import build_scaled_scenario

        big = build_scaled_scenario(100, seed=3)
        stats = SourceStatistics()
        examined = stats.sample_source(big.whois, limit=10)
        assert examined == 10
        estimate = stats.base_cardinality("whois", "person")
        assert 50 <= estimate <= 150  # scaled back toward the true 100

    def test_sampling_informs_join_order(self, scenario):
        stats = SourceStatistics()
        stats.sample_source(scenario.whois)
        stats.sample_source(scenario.cs)
        optimizer = CostBasedOptimizer(
            scenario.registry, statistics=stats, strategy="statistics"
        )
        optimizer.bind_external_registry(scenario.mediator.externals)
        plan = optimizer.plan_rule(LogicalRule(RULE))
        first = [n for n in plan.nodes() if isinstance(n, QueryNode)][0]
        # tiny sampled sources: whois (2 persons, 1 condition) still wins
        assert first.source in ("whois", "cs")


class TestValueSelectivity:
    """Value-level selectivities gathered by sampling."""

    def test_sampled_selectivity(self):
        from repro.datasets import build_campus_scenario

        scenario = build_campus_scenario(200, gold_fraction=0.05, seed=1)
        stats = SourceStatistics()
        stats.sample_source(scenario.badges)
        gold = stats.value_selectivity("badges", "badge", "level", "gold")
        blue = stats.value_selectivity("badges", "badge", "level", "blue")
        assert gold < 0.2
        assert blue > 0.7

    def test_unsampled_value_uses_default(self):
        stats = SourceStatistics()
        assert (
            stats.value_selectivity("s", "rec", "k", "never seen")
            == stats.selectivity
        )

    def test_estimate_uses_value_selectivity(self):
        from repro.datasets import build_campus_scenario

        scenario = build_campus_scenario(200, gold_fraction=0.05, seed=1)
        stats = SourceStatistics()
        stats.sample_source(scenario.badges)
        rare = stats.estimate(
            "badges", parse_pattern("<badge {<level 'gold'>}>")
        )
        common = stats.estimate(
            "badges", parse_pattern("<badge {<level 'blue'>}>")
        )
        assert rare < common

    def test_clear_drops_value_stats(self):
        from repro.datasets import build_campus_scenario

        scenario = build_campus_scenario(50, seed=1)
        stats = SourceStatistics()
        stats.sample_source(scenario.badges)
        stats.clear()
        assert (
            stats.value_selectivity("badges", "badge", "level", "gold")
            == stats.selectivity
        )


class TestExhaustiveStrategy:
    def test_same_answers_as_heuristic(self):
        from repro.datasets import build_campus_scenario
        from repro.oem import structural_key

        results = {}
        for strategy in ("heuristic", "exhaustive"):
            scenario = build_campus_scenario(120, seed=5, strategy=strategy)
            if strategy == "exhaustive":
                for name in ("hr", "badges", "parking"):
                    scenario.mediator.statistics.sample_source(
                        scenario.registry.resolve(name)
                    )
            results[strategy] = sorted(
                repr(structural_key(o)) for o in scenario.mediator.export()
            )
        assert results["heuristic"] == results["exhaustive"]

    def test_informed_exhaustive_is_cheaper(self):
        from repro.datasets import build_campus_scenario

        heuristic = build_campus_scenario(300, strategy="heuristic")
        heuristic.mediator.export()
        heuristic_cost = heuristic.mediator.last_context.total_queries

        exhaustive = build_campus_scenario(300, strategy="exhaustive")
        for name in ("hr", "badges", "parking"):
            exhaustive.mediator.statistics.sample_source(
                exhaustive.registry.resolve(name)
            )
        exhaustive.mediator.export()
        exhaustive_cost = exhaustive.mediator.last_context.total_queries
        assert exhaustive_cost < heuristic_cost / 3

    def test_exhaustive_without_stats_still_works(self):
        from repro.datasets import build_campus_scenario

        scenario = build_campus_scenario(60, seed=2, strategy="exhaustive")
        assert isinstance(scenario.mediator.export(), list)

    def test_many_patterns_fall_back_to_heuristic(self, scenario):
        # 8 patterns exceed the permutation cap; the call must not blow up
        optimizer = CostBasedOptimizer(
            scenario.registry, strategy="exhaustive"
        )
        optimizer.bind_external_registry(scenario.mediator.externals)
        tail = " AND ".join(
            f"<person {{<name N{i}>}}>@whois" for i in range(8)
        )
        head = " ".join(f"<p{i} N{i}>" for i in range(8))
        rule = parse_rule(f"{head} :- {tail}")
        plan = optimizer.plan_rule(LogicalRule(rule))
        assert plan.nodes()

"""Unit tests for the OEM textual parser."""

import pytest

from repro.oem import OEMParseError, parse_oem, parse_one


class TestAtomicParsing:
    def test_full_four_field_form(self):
        o = parse_one("<&12, department, string, 'CS'>")
        assert o.oid.text == "&12"
        assert (o.label, o.type, o.value) == ("department", "string", "CS")

    def test_type_elided(self):
        o = parse_one("<&12, year, 3>")
        assert (o.type, o.value) == ("integer", 3)

    def test_type_and_oid_elided(self):
        o = parse_one("<dept 'CS'>")
        assert (o.label, o.value) == ("dept", "CS")

    def test_commas_optional(self):
        assert parse_one("<&1 dept string 'CS'>").value == "CS"

    def test_real_value(self):
        assert parse_one("<ratio 2.5>").value == 2.5

    def test_negative_number(self):
        assert parse_one("<delta -4>").value == -4

    def test_boolean_words(self):
        assert parse_one("<flag true>").value is True
        assert parse_one("<flag false>").value is False

    def test_null_word(self):
        o = parse_one("<gone null>")
        assert o.value is None and o.type == "null"

    def test_bare_word_value_is_string(self):
        assert parse_one("<status active>").value == "active"

    def test_double_quotes(self):
        assert parse_one('<name "Joe"> ').value == "Joe"

    def test_escaped_quote(self):
        assert parse_one(r"<name 'O\'Hara'>").value == "O'Hara"


class TestSetParsing:
    def test_reference_style(self):
        roots = parse_oem(
            """
            <&p, person, set, {&n, &d}>
              <&n, name, string, 'Joe'>
              <&d, dept, string, 'CS'>
            ;
            """
        )
        assert len(roots) == 1
        assert [c.label for c in roots[0].children] == ["name", "dept"]

    def test_inline_style(self):
        o = parse_one("<&p, person, set, {<&n, name, string, 'Joe'>}>")
        assert o.children[0].value == "Joe"

    def test_mixed_style(self):
        roots = parse_oem(
            "<&p, person, set, {&n, <&d, dept, string, 'CS'>}>"
            " <&n, name, string, 'Joe'>"
        )
        assert len(roots) == 1
        assert len(roots[0].children) == 2

    def test_top_level_objects_are_unreferenced(self):
        roots = parse_oem(
            "<&a, x, set, {&b}> <&b, y, integer, 1> <&c, z, integer, 2>"
        )
        assert sorted(r.label for r in roots) == ["x", "z"]

    def test_empty_set(self):
        assert parse_one("<&p, person, set, {}>").children == ()

    def test_shared_subobject(self):
        roots = parse_oem(
            "<&a, p, set, {&s}> <&b, q, set, {&s}> <&s, v, integer, 1>"
        )
        assert len(roots) == 2
        assert all(r.children[0].value == 1 for r in roots)

    def test_semicolons_ignored(self):
        assert len(parse_oem("<a 1> ; ; <b 2> ;")) == 2


class TestErrors:
    def test_undefined_reference(self):
        with pytest.raises(OEMParseError, match="undefined"):
            parse_oem("<&a, p, set, {&missing}>")

    def test_duplicate_oid(self):
        with pytest.raises(OEMParseError, match="duplicate"):
            parse_oem("<&a, p, integer, 1> <&a, q, integer, 2>")

    def test_cyclic_reference(self):
        with pytest.raises(OEMParseError, match="cyclic"):
            parse_oem("<&a, p, set, {&b}> <&b, q, set, {&a}>")

    def test_unterminated_object(self):
        with pytest.raises(OEMParseError):
            parse_oem("<&a, p, integer, 1")

    def test_unterminated_string(self):
        with pytest.raises(OEMParseError, match="unterminated string"):
            parse_oem("<&a, p, string, 'oops>")

    def test_too_few_fields(self):
        with pytest.raises(OEMParseError, match="2-4 fields"):
            parse_oem("<onlylabel>")

    def test_too_many_fields(self):
        with pytest.raises(OEMParseError, match="2-4 fields"):
            parse_oem("<&a b c d 5>")

    def test_bare_ampersand(self):
        with pytest.raises(OEMParseError):
            parse_oem("<& a, p, integer, 1>")

    def test_braced_value_requires_set_type(self):
        with pytest.raises(OEMParseError, match="set"):
            parse_oem("<&a, p, string, {}>")

    def test_oid_reference_outside_set(self):
        with pytest.raises(OEMParseError):
            parse_oem("<&a, p, integer, 1> <&b, q, string, &a>")

    def test_parse_one_requires_exactly_one(self):
        with pytest.raises(OEMParseError, match="exactly one"):
            parse_one("<a 1> <b 2>")

    def test_position_reported(self):
        with pytest.raises(OEMParseError, match="offset"):
            parse_oem("<a 1> @")


class TestPaperFigures:
    def test_figure_2_3_whois(self):
        from repro.datasets import WHOIS_TEXT

        roots = parse_oem(WHOIS_TEXT)
        assert len(roots) == 2
        joe, nick = roots
        assert joe.get("name") == "Joe Chung"
        assert joe.get("e_mail") == "chung@cs"
        assert nick.get("year") == 3
        assert nick.get("e_mail") is None  # the irregularity

"""Unit tests for binding environments and static rule analysis."""

import pytest

from repro.msl import (
    Bindings,
    EMPTY_BINDINGS,
    MSLSemanticError,
    check_rule,
    check_specification_rule,
    condition_variables,
    parse_rule,
    rename_apart,
    tail_variables,
    values_equal,
)
from repro.oem import atom, obj


class TestValuesEqual:
    def test_atoms(self):
        assert values_equal(1, 1)
        assert values_equal("a", "a")
        assert not values_equal(1, 2)

    def test_bool_vs_int_distinct(self):
        assert not values_equal(True, 1)
        assert not values_equal(0, False)

    def test_int_vs_float(self):
        assert values_equal(3, 3.0)

    def test_objects_structural(self):
        assert values_equal(atom("a", 1, oid="&1"), atom("a", 1, oid="&2"))
        assert not values_equal(atom("a", 1), atom("a", 2))

    def test_object_sets_order_insensitive(self):
        left = (atom("a", 1), atom("b", 2))
        right = (atom("b", 2), atom("a", 1))
        assert values_equal(left, right)

    def test_atom_vs_object(self):
        assert not values_equal(1, atom("a", 1))


class TestBindings:
    def test_bind_and_get(self):
        env = EMPTY_BINDINGS.bind("X", 1)
        assert env["X"] == 1
        assert "X" in env and "Y" not in env

    def test_bind_conflict_returns_none(self):
        env = EMPTY_BINDINGS.bind("X", 1)
        assert env.bind("X", 2) is None
        assert env.bind("X", 1) is env

    def test_bind_anonymous_noop(self):
        env = EMPTY_BINDINGS.bind("_", 1)
        assert len(env) == 0

    def test_immutability(self):
        env = EMPTY_BINDINGS.bind("X", 1)
        env.bind("Y", 2)
        assert "Y" not in env
        with pytest.raises(AttributeError):
            env._map = {}

    def test_merge_agreeing(self):
        a = EMPTY_BINDINGS.bind("X", 1).bind("Y", 2)
        b = EMPTY_BINDINGS.bind("Y", 2).bind("Z", 3)
        merged = a.merge(b)
        assert dict(merged.items()) == {"X": 1, "Y": 2, "Z": 3}

    def test_merge_disagreeing(self):
        a = EMPTY_BINDINGS.bind("X", 1)
        b = EMPTY_BINDINGS.bind("X", 2)
        assert a.merge(b) is None

    def test_project(self):
        env = EMPTY_BINDINGS.bind("X", 1).bind("Y", 2)
        assert dict(env.project({"X"}).items()) == {"X": 1}

    def test_key_is_order_insensitive(self):
        a = EMPTY_BINDINGS.bind("X", 1).bind("Y", 2)
        b = EMPTY_BINDINGS.bind("Y", 2).bind("X", 1)
        assert a.key() == b.key()
        assert a == b and hash(a) == hash(b)

    def test_key_handles_object_sets(self):
        env = EMPTY_BINDINGS.bind("R", (atom("a", 1),))
        env2 = EMPTY_BINDINGS.bind("R", (atom("a", 1, oid="&z"),))
        assert env.key() == env2.key()


class TestConditionVariables:
    def test_pattern_condition(self):
        rule = parse_rule("<a X> :- <b {<c X> | R}>@s")
        assert condition_variables(rule.tail[0]) == {"X", "R"}

    def test_external_call(self):
        rule = parse_rule("<a N> :- <x N>@s AND decomp(N, LN, FN)")
        assert condition_variables(rule.tail[1]) == {"N", "LN", "FN"}

    def test_comparison(self):
        rule = parse_rule("<a X> :- <x X>@s AND X > 3")
        assert condition_variables(rule.tail[1]) == {"X"}

    def test_tail_variables(self):
        rule = parse_rule("<a X> :- <b X>@s AND <c Y>@t")
        assert tail_variables(rule) == {"X", "Y"}


class TestCheckRule:
    def test_valid_rule_passes(self):
        check_rule(parse_rule("<a X> :- <b X>@s"))

    def test_unsafe_head_variable(self):
        with pytest.raises(MSLSemanticError, match="unsafe"):
            check_rule(parse_rule("<a Y> :- <b X>@s"))

    def test_head_variable_bound_by_external_is_safe(self):
        check_rule(parse_rule("<a LN> :- <b N>@s AND decomp(N, LN, FN)"))

    def test_no_pattern_conditions(self):
        with pytest.raises(MSLSemanticError, match="no object patterns"):
            check_rule(parse_rule("<a X> :- X > 3"))

    def test_bare_variable_in_tail_braces(self):
        with pytest.raises(MSLSemanticError, match="bare variable"):
            check_rule(parse_rule("<a X> :- <b {X V}>@s"))

    def test_variable_as_object_and_rest(self):
        with pytest.raises(MSLSemanticError, match="object variable"):
            check_rule(
                parse_rule("<a V> :- V:<b {<c C> | V}>@s")
            )

    def test_specification_rule_rejects_bare_head_var(self):
        with pytest.raises(MSLSemanticError, match="object patterns"):
            check_specification_rule(parse_rule("X :- X:<b {}>@s"))

    def test_query_head_may_be_bare_var(self):
        check_rule(parse_rule("X :- X:<b {}>@s"), is_query=True)


class TestRenameApart:
    def test_all_occurrences_renamed_consistently(self):
        rule = parse_rule("<a X> :- <b {<c X> | R}>@s AND X > 2")
        renamed = rename_apart(rule, "_1")
        text = str(renamed)
        assert "X_1" in text and "R_1" in text
        assert " X " not in text

    def test_anonymous_untouched(self):
        rule = parse_rule("<a X> :- <b {<c X> <d _>}>@s")
        assert "_ " not in str(rename_apart(rule, "_1")).replace("_1", "")

    def test_semantics_preserved(self):
        rule = parse_rule("<a X> :- <b X>@s")
        renamed = rename_apart(rule, "_q")
        assert str(renamed) == "<a X_q> :- <b X_q>@s"

    def test_external_and_comparison_args_renamed(self):
        rule = parse_rule("<a N> :- <b N>@s AND f(N, M) AND M > 1")
        renamed = rename_apart(rule, "_z")
        assert "f(N_z, M_z)" in str(renamed)
        assert "M_z > 1" in str(renamed)

    def test_semantic_oid_args_renamed(self):
        rule = parse_rule("<&p(T) pub {<t T>}> :- <x {<t T>}>@s")
        assert "&p(T_1)" in str(rename_apart(rule, "_1"))

"""Unit tests for binding tables, plan nodes, and the datamerge engine."""

import pytest

from repro.datasets import build_scenario
from repro.external import default_registry
from repro.mediator import (
    BindingTable,
    ConstructorNode,
    DatamergeEngine,
    DedupNode,
    ExecutionContext,
    ExternalPredNode,
    ExtractorNode,
    FilterNode,
    JoinNode,
    OBJECT_COLUMN,
    ParameterizedQueryNode,
    PhysicalPlan,
    QueryNode,
    RESULT_COLUMN,
    TableError,
    UnionNode,
)
from repro.msl import (
    Comparison,
    Const,
    ExternalCall,
    Var,
    parse_pattern,
    parse_rule,
)
from repro.oem import atom, obj


class TestBindingTable:
    def test_construction_and_access(self):
        t = BindingTable(["a", "b"], [(1, 2), (3, 4)])
        assert len(t) == 2
        assert t.column_values("b") == [2, 4]
        assert t.row_dict(t.rows[0]) == {"a": 1, "b": 2}

    def test_duplicate_columns_rejected(self):
        with pytest.raises(TableError):
            BindingTable(["a", "a"])

    def test_arity_checked(self):
        t = BindingTable(["a"])
        with pytest.raises(TableError):
            t.append((1, 2))

    def test_unknown_column(self):
        with pytest.raises(TableError, match="no column"):
            BindingTable(["a"]).position("z")

    def test_project(self):
        t = BindingTable(["a", "b"], [(1, 2)])
        assert BindingTable(["b"], [(2,)]).rows == t.project(["b"]).rows

    def test_filter(self):
        t = BindingTable(["a"], [(1,), (2,)])
        assert t.filter(lambda r: r["a"] > 1).rows == [(2,)]

    def test_extend_dependent_join(self):
        t = BindingTable(["a"], [(1,), (2,)])
        extended = t.extend(["b"], lambda r: [(r["a"] * 10,)] * r["a"])
        assert extended.rows == [(1, 10), (2, 20), (2, 20)]

    def test_extend_drops_rows_without_extensions(self):
        t = BindingTable(["a"], [(1,), (2,)])
        extended = t.extend(["b"], lambda r: [("x",)] if r["a"] == 1 else [])
        assert extended.rows == [(1, "x")]

    def test_extend_collision_rejected(self):
        t = BindingTable(["a"])
        with pytest.raises(TableError, match="already exist"):
            t.extend(["a"], lambda r: [])

    def test_natural_join_shared_columns(self):
        left = BindingTable(["k", "x"], [("a", 1), ("b", 2)])
        right = BindingTable(["k", "y"], [("a", 10), ("c", 30)])
        joined = left.natural_join(right)
        assert joined.columns == ("k", "x", "y")
        assert joined.rows == [("a", 1, 10)]

    def test_natural_join_cross_product_when_disjoint(self):
        left = BindingTable(["x"], [(1,), (2,)])
        right = BindingTable(["y"], [(10,)])
        assert len(left.natural_join(right)) == 2

    def test_join_on_object_sets(self):
        rest1 = (atom("e_mail", "a@b"),)
        rest2 = (atom("e_mail", "a@b", oid="&other"),)
        left = BindingTable(["r"], [(rest1,)])
        right = BindingTable(["r", "z"], [(rest2, 1)])
        assert len(left.natural_join(right)) == 1

    def test_distinct(self):
        t = BindingTable(["a", "b"], [(1, 2), (1, 2), (1, 3)])
        assert len(t.distinct()) == 2
        assert len(t.distinct(["a"])) == 1

    def test_render_contains_heading(self):
        t = BindingTable(["N"], [("Joe Chung",)])
        out = t.render()
        assert "N" in out and "'Joe Chung'" in out

    def test_render_truncates(self):
        t = BindingTable(["a"], [(i,) for i in range(30)])
        assert "more rows" in t.render(max_rows=5)


@pytest.fixture
def scenario():
    return build_scenario()


@pytest.fixture
def context(scenario):
    return ExecutionContext(
        sources=scenario.registry, externals=scenario.mediator.externals
    )


class TestPlanNodes:
    def test_query_node(self, context):
        node = QueryNode(
            "whois",
            parse_rule(
                "<bind_for_whois {<bind_for_N N>}> :- <person {<name N>}>"
            ),
        )
        table = node.execute([], context)
        assert table.columns == (OBJECT_COLUMN,)
        assert len(table) == 2
        assert context.queries_sent == {"whois": 1}

    def test_extractor_node(self, context):
        query = QueryNode(
            "whois",
            parse_rule(
                "<bind_for_whois {<bind_for_N N>}> :- <person {<name N>}>"
            ),
        )
        extract = ExtractorNode(
            query, parse_pattern("<bind_for_whois {<bind_for_N N>}>"), ["N"]
        )
        table = extract.execute([query.execute([], context)], context)
        assert table.columns == ("N",)
        assert sorted(r[0] for r in table.rows) == ["Joe Chung", "Nick Naive"]

    def test_extractor_rejects_non_objects(self, context):
        node = ExtractorNode(
            QueryNode("whois", parse_rule("<a B> :- <person B>")),
            parse_pattern("<a B>"),
            ["B"],
            column=OBJECT_COLUMN,
        )
        bad = BindingTable([OBJECT_COLUMN], [(42,)])
        with pytest.raises(TableError, match="non-object"):
            node.execute([bad], context)

    def test_extractor_collision_filters(self, context):
        # carried column N must agree with extracted N
        query = QueryNode(
            "whois",
            parse_rule(
                "<bind_for_whois {<bind_for_N N>}> :- <person {<name N>}>"
            ),
        )
        raw = query.execute([], context)
        carried = BindingTable(
            ["N", OBJECT_COLUMN],
            [("Joe Chung", row[0]) for row in raw.rows],
        )
        node = ExtractorNode(
            query, parse_pattern("<bind_for_whois {<bind_for_N N>}>"), ["N"]
        )
        table = node.execute([carried], context)
        assert [r[0] for r in table.rows] == ["Joe Chung"]

    def test_external_pred_node(self, context):
        source = BindingTable(["N"], [("Joe Chung",)])
        node = ExternalPredNode(
            DedupNode(QueryNode("whois", parse_rule("<a B> :- <person B>"))),
            ExternalCall("decomp", (Var("N"), Var("LN"), Var("FN"))),
        )
        table = node.execute([source], context)
        assert table.columns == ("N", "LN", "FN")
        assert table.rows == [("Joe Chung", "Chung", "Joe")]

    def test_parameterized_query_node(self, context):
        source = BindingTable(
            ["R", "LN", "FN"], [("employee", "Chung", "Joe")]
        )
        template = parse_rule(
            "<bind_for_cs {<bind_for_Rest2 Rest2>}> :- "
            "<$R {<first_name $FN> <last_name $LN> | Rest2}>"
        )
        node = ParameterizedQueryNode(
            DedupNode(QueryNode("cs", template)),
            "cs",
            template,
            {"R": "R", "LN": "LN", "FN": "FN"},
        )
        table = node.execute([source], context)
        assert table.columns == ("R", "LN", "FN", OBJECT_COLUMN)
        assert len(table) == 1
        concrete = node.instantiate(source.row_dict(source.rows[0]))
        assert "$" not in str(concrete)
        assert "<employee " in str(concrete)

    def test_filter_node(self, context):
        table = BindingTable(["Y"], [(2,), (4,)])
        node = FilterNode(
            DedupNode(QueryNode("cs", parse_rule("<a B> :- <student B>"))),
            Comparison(Var("Y"), ">", Const(3)),
        )
        assert node.execute([table], context).rows == [(4,)]

    def test_join_and_dedup_nodes(self, context):
        q = QueryNode("cs", parse_rule("<a B> :- <student B>"))
        left = BindingTable(["k"], [("a",), ("a",)])
        right = BindingTable(["k", "v"], [("a", 1)])
        joined = JoinNode(q, q).execute([left, right], context)
        assert len(joined) == 2
        assert len(DedupNode(q).execute([joined], context)) == 1

    def test_constructor_node(self, context):
        rule = parse_rule("<who {<name N>}> :- <person {<name N>}>@whois")
        table = BindingTable(["N"], [("A",), ("A",), ("B",)])
        node = ConstructorNode(
            DedupNode(QueryNode("whois", rule)), rule.head
        )
        result = node.execute([table], context)
        assert result.columns == (RESULT_COLUMN,)
        assert len(result) == 2  # dedup

    def test_constructor_without_dedup(self, context):
        rule = parse_rule("<who {<name N>}> :- <person {<name N>}>@whois")
        table = BindingTable(["N"], [("A",), ("A",)])
        node = ConstructorNode(
            DedupNode(QueryNode("whois", rule)), rule.head, deduplicate=False
        )
        assert len(node.execute([table], context)) == 2

    def test_union_node(self, context):
        a = BindingTable([RESULT_COLUMN], [(atom("x", 1),)])
        b = BindingTable([RESULT_COLUMN], [(atom("x", 1),), (atom("y", 2),)])
        q = QueryNode("cs", parse_rule("<a B> :- <student B>"))
        union = UnionNode([q, q])
        assert len(union.execute([a, b], context)) == 2

    def test_union_rejects_non_result_tables(self, context):
        q = QueryNode("cs", parse_rule("<a B> :- <student B>"))
        with pytest.raises(TableError):
            UnionNode([q]).execute([BindingTable(["x"])], context)


class TestPhysicalPlanAndEngine:
    def test_topological_order(self):
        q = QueryNode("whois", parse_rule("<a B> :- <person B>"))
        e = ExtractorNode(q, parse_pattern("<a B>"), ["B"])
        plan = PhysicalPlan(e)
        assert plan.nodes() == [q, e]
        assert "[1]" in plan.describe()

    def test_engine_executes_and_traces(self, scenario, context):
        from repro.datasets import JOE_CHUNG_QUERY

        med = scenario.mediator
        program = med.expander.expand(
            __import__("repro.msl", fromlist=["parse_query"]).parse_query(
                JOE_CHUNG_QUERY
            )
        )
        plan = med.optimizer.plan_program(program)
        engine = DatamergeEngine(trace=True)
        objects = engine.execute_to_objects(plan, context)
        assert len(objects) == 1
        assert engine.last_trace
        rendered = engine.render_trace()
        assert "query whois" in rendered
        assert "construct" in rendered

    def test_context_accounting(self, scenario, context):
        med = scenario.mediator
        med.answer("X :- X:<cs_person {<name 'Joe Chung'>}>@med")
        assert med.last_context.total_queries >= 2
        assert med.last_context.total_objects >= 1

"""Unit tests for object fusion, the Mediator facade, and the client
result set."""

import pytest

from repro.client import ResultSet
from repro.datasets import JOE_CHUNG_QUERY, MS1, build_scenario
from repro.mediator import Mediator, MediatorError, fuse_objects, has_semantic_oids
from repro.msl import MSLSemanticError, parse_query
from repro.oem import OEMObject, SemanticOid, atom, obj, parse_oem
from repro.wrappers import OEMStoreWrapper, SourceRegistry


def sem(label, functor, args, *children):
    return OEMObject(label, children, "set", SemanticOid(functor, args))


class TestFusion:
    def test_plain_objects_pass_through(self):
        objects = [atom("a", 1), atom("a", 1)]
        assert fuse_objects(objects) == objects

    def test_has_semantic_oids(self):
        assert not has_semantic_oids([atom("a", 1)])
        assert has_semantic_oids([sem("p", "f", [1])])

    def test_merge_same_oid(self):
        a = sem("pub", "pub", ["T"], atom("title", "T"), atom("venue", "V"))
        b = sem("pub", "pub", ["T"], atom("title", "T"), atom("pages", "1-2"))
        (fused,) = fuse_objects([a, b])
        labels = sorted(c.label for c in fused.children)
        assert labels == ["pages", "title", "venue"]

    def test_different_oids_not_merged(self):
        a = sem("pub", "pub", ["T1"], atom("title", "T1"))
        b = sem("pub", "pub", ["T2"], atom("title", "T2"))
        assert len(fuse_objects([a, b])) == 2

    def test_order_preserved_at_first_contributor(self):
        a = sem("pub", "pub", ["T"], atom("x", 1))
        plain = atom("q", 0)
        b = sem("pub", "pub", ["T"], atom("y", 2))
        result = fuse_objects([a, plain, b])
        assert [o.label for o in result] == ["pub", "q"]

    def test_label_disagreement_rejected(self):
        a = sem("pub", "f", ["T"], atom("x", 1))
        b = sem("book", "f", ["T"], atom("y", 2))
        with pytest.raises(ValueError, match="disagree on label"):
            fuse_objects([a, b])

    def test_atomic_disagreement_rejected(self):
        a = OEMObject("v", 1, oid=SemanticOid("f", ["k"]))
        b = OEMObject("v", 2, oid=SemanticOid("f", ["k"]))
        with pytest.raises(ValueError, match="disagree on value"):
            fuse_objects([a, b])

    def test_atomic_agreement_kept(self):
        a = OEMObject("v", 1, oid=SemanticOid("f", ["k"]))
        b = OEMObject("v", 1, oid=SemanticOid("f", ["k"]))
        assert len(fuse_objects([a, b])) == 1

    def test_mixed_atomic_set_rejected(self):
        a = OEMObject("v", 1, oid=SemanticOid("f", ["k"]))
        b = sem("v", "f", ["k"], atom("x", 1))
        with pytest.raises(ValueError, match="mix"):
            fuse_objects([a, b])

    def test_nested_fusion(self):
        inner1 = sem("addr", "addr", ["k"], atom("city", "PA"))
        inner2 = sem("addr", "addr", ["k"], atom("zip", "94305"))
        a = sem("p", "p", ["x"], inner1)
        b = sem("p", "p", ["x"], inner2)
        (fused,) = fuse_objects([a, b])
        (addr,) = fused.children
        assert sorted(c.label for c in addr.children) == ["city", "zip"]

    def test_duplicate_children_collapse(self):
        a = sem("p", "p", ["x"], atom("t", 1))
        b = sem("p", "p", ["x"], atom("t", 1, oid="&zz"))
        (fused,) = fuse_objects([a, b])
        assert len(fused.children) == 1


class TestMediatorFacade:
    def test_answer_accepts_text_queries(self):
        scenario = build_scenario()
        assert len(scenario.mediator.answer(JOE_CHUNG_QUERY)) == 1

    def test_invalid_name(self):
        with pytest.raises(MediatorError):
            Mediator("not a name", MS1, SourceRegistry())

    def test_empty_specification(self):
        with pytest.raises(MediatorError, match="needs rules"):
            Mediator(
                "m",
                "EXT decomp(bound, free, free) BY name_to_lnfn",
                SourceRegistry(),
            )

    def test_bad_specification_rule(self):
        with pytest.raises(MSLSemanticError):
            Mediator("m", "<a X> :- <b Y>@s", SourceRegistry())

    def test_registers_itself(self):
        scenario = build_scenario()
        assert scenario.registry.resolve("med") is scenario.mediator

    def test_register_false(self):
        registry = SourceRegistry(OEMStoreWrapper("s", []))
        Mediator("m", "<a X> :- <b {<c X>}>@s", registry, register=False)
        assert "m" not in registry

    def test_explain_contains_program_and_plan(self):
        scenario = build_scenario()
        text = scenario.mediator.explain(JOE_CHUNG_QUERY)
        assert "logical datamerge program" in text
        assert "physical datamerge graph" in text
        assert "query whois" in text

    def test_wildcard_query_falls_back_to_materialization(self):
        scenario = build_scenario()
        result = scenario.mediator.answer(
            "X :- X:<cs_person {.. <title T>}>@med"
        )
        assert len(result) == 1
        assert result[0].get("name") == "Joe Chung"

    def test_mediator_stacking(self):
        scenario = build_scenario()
        upper = Mediator(
            "upper",
            "<p {<name N>}> :- <cs_person {<name N>}>@med",
            scenario.registry,
        )
        result = upper.answer("X :- X:<p {<name 'Joe Chung'>}>@upper")
        assert len(result) == 1

    def test_query_against_unknown_label_empty(self):
        scenario = build_scenario()
        assert scenario.mediator.answer("X :- X:<nothing {}>@med") == []

    def test_export_is_deduplicated(self):
        scenario = build_scenario()
        export = scenario.mediator.export()
        assert len(export) == len({str(o) for o in export})


class TestRecursiveViews:
    def build(self):
        registry = SourceRegistry()
        # edges of a tiny graph: a->b, b->c
        registry.register(
            OEMStoreWrapper(
                "g",
                parse_oem(
                    """
                    <&e1, edge, set, {&f1,&t1}>
                      <&f1, src, string, 'a'>
                      <&t1, dst, string, 'b'>
                    <&e2, edge, set, {&f2,&t2}>
                      <&f2, src, string, 'b'>
                      <&t2, dst, string, 'c'>
                    """
                ),
            )
        )
        spec = """
        <path {<src X> <dst Y>}> :- <edge {<src X> <dst Y>}>@g ;
        <path {<src X> <dst Z>}> :-
            <edge {<src X> <dst Y>}>@g AND <path {<src Y> <dst Z>}>@tc
        """
        return Mediator("tc", spec, registry)

    def test_detected_as_recursive(self):
        assert self.build().is_recursive

    def test_transitive_closure(self):
        mediator = self.build()
        paths = {
            (o.get("src"), o.get("dst")) for o in mediator.export()
        }
        assert paths == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_query_on_recursive_view(self):
        mediator = self.build()
        result = mediator.answer("P :- P:<path {<src 'a'> <dst 'c'>}>@tc")
        assert len(result) == 1

    def test_fixpoint_bound(self):
        mediator = self.build()
        mediator.max_fixpoint_iterations = 1
        with pytest.raises(MediatorError, match="fixpoint"):
            mediator.export()


class TestResultSet:
    @pytest.fixture
    def results(self):
        return ResultSet(
            [
                obj("p", atom("name", "Bob"), atom("year", 2)),
                obj("p", atom("name", "Ann"), atom("year", 4)),
                obj("q", atom("name", "Zed")),
            ]
        )

    def test_sequence_protocol(self, results):
        assert len(results) == 3
        assert results[0].get("name") == "Bob"
        assert bool(results)
        assert not ResultSet([])

    def test_with_label(self, results):
        assert len(results.with_label("p")) == 2

    def test_where(self, results):
        young = results.where(lambda o: (o.get("year") or 9) < 3)
        assert len(young) == 1

    def test_sorted_by(self, results):
        ordered = results.sorted_by("name")
        assert [o.get("name") for o in ordered] == ["Ann", "Bob", "Zed"]

    def test_sorted_by_missing_values_last(self, results):
        ordered = results.sorted_by("year")
        assert ordered[-1].get("name") == "Zed"

    def test_canonical_deterministic(self, results):
        a = results.canonical().objects()
        b = ResultSet(list(reversed(results.objects()))).canonical().objects()
        assert [str(x) for x in a] == [str(y) for y in b]

    def test_to_python(self, results):
        data = results.to_python()
        assert {"name": "Bob", "year": 2} in data

    def test_pretty_and_dump(self, results):
        assert "Ann" in results.pretty()
        assert results.dump().count(";") == 3

"""Unit tests for the reliability layer.

Everything here is deterministic: clocks are :class:`ManualClock`, all
randomness is seeded, and no test ever sleeps for real.
"""

import random

import pytest

from repro.datasets import JOE_CHUNG_QUERY, build_scenario
from repro.mediator import Mediator, MediatorError
from repro.msl import parse_rule
from repro.oem import OEMObject, parse_oem
from repro.reliability import (
    CLOSED,
    CircuitBreaker,
    FaultInjectingSource,
    HALF_OPEN,
    HealthRegistry,
    MalformedResponseError,
    ManualClock,
    MonotonicClock,
    OPEN,
    ResilienceConfig,
    ResilienceManager,
    ResilientSource,
    RetryPolicy,
    SourceTimeoutError,
    SourceUnavailable,
    SourceWarning,
    TransientSourceError,
    aggregate_warnings,
)
from repro.wrappers import OEMStoreWrapper, SourceRegistry

PEOPLE = """
<&x1, rec, set, {&a1}>
  <&a1, name, string, 'Ann'>
;
"""

QUERY = parse_rule("X :- X:<rec {<name 'Ann'>}>")


def make_wrapper(name="src"):
    return OEMStoreWrapper(name, parse_oem(PEOPLE))


class TestManualClock:
    def test_sleep_advances_without_blocking(self):
        clock = ManualClock()
        clock.sleep(3.5)
        clock.advance(1.5)
        assert clock.now() == 5.0
        assert clock.sleeps == [3.5]

    def test_cannot_go_backwards(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1)

    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        first = clock.now()
        assert clock.now() >= first


class TestRetryPolicy:
    def test_exponential_backoff_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, jitter=0.0
        )
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.1, 0.2, 0.4]

    def test_delay_is_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=5.0,
                             jitter=0.0)
        assert policy.delay(4) == 5.0

    def test_jitter_is_deterministic_under_a_seed(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.delay(n, random.Random(42)) for n in (1, 2, 3)]
        b = [policy.delay(n, random.Random(42)) for n in (1, 2, 3)]
        assert a == b
        assert a != [policy.delay(n) for n in (1, 2, 3)]

    def test_deadline_budget(self):
        policy = RetryPolicy(deadline=1.0)
        assert policy.within_deadline(0.5, 0.4)
        assert not policy.within_deadline(0.5, 0.6)
        assert RetryPolicy(deadline=None).within_deadline(100.0, 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=30.0):
        clock = ManualClock()
        return clock, CircuitBreaker(
            failure_threshold=threshold, cooldown=cooldown, clock=clock
        )

    def test_opens_after_consecutive_failures(self):
        _, breaker = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_the_failure_streak(self):
        _, breaker = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_opens_after_cooldown(self):
        clock, breaker = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_success_closes(self):
        clock, breaker = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock, breaker = self.make(threshold=3, cooldown=10.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        # the cooldown restarted at the probe failure
        clock.advance(5.0)
        assert breaker.state == OPEN
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN

    def test_reset(self):
        _, breaker = self.make(threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1)


class TestFaultInjectingSource:
    def test_same_seed_same_schedule(self):
        outcomes = []
        for _ in range(2):
            faulty = FaultInjectingSource(
                make_wrapper(), seed=123, fault_rate=0.4, empty_rate=0.2,
                malformed_rate=0.1,
            )
            run = []
            for _ in range(30):
                try:
                    run.append(("ok", len(faulty.answer(QUERY))))
                except TransientSourceError:
                    run.append(("fault", -1))
            outcomes.append((run, list(faulty.outcomes)))
        assert outcomes[0] == outcomes[1]

    def test_different_seed_different_schedule(self):
        def schedule(seed):
            faulty = FaultInjectingSource(
                make_wrapper(), seed=seed, fault_rate=0.5
            )
            for _ in range(30):
                try:
                    faulty.answer(QUERY)
                except TransientSourceError:
                    pass
            return list(faulty.outcomes)

        assert schedule(1) != schedule(2)

    def test_dead_switch_overrides_schedule(self):
        faulty = FaultInjectingSource(make_wrapper(), seed=0, dead=True)
        from repro.wrappers import SourceError

        with pytest.raises(SourceError):
            faulty.answer(QUERY)
        faulty.dead = False
        assert len(faulty.answer(QUERY)) == 1

    def test_latency_advances_the_injected_clock(self):
        clock = ManualClock()
        faulty = FaultInjectingSource(
            make_wrapper(), seed=0, latency=2.5, clock=clock
        )
        faulty.answer(QUERY)
        assert clock.now() == 2.5

    def test_empty_and_malformed_outcomes(self):
        faulty = FaultInjectingSource(make_wrapper(), seed=5, empty_rate=1.0)
        assert faulty.answer(QUERY) == []
        assert faulty.outcomes == ["empty"]
        garbled = FaultInjectingSource(
            make_wrapper(), seed=5, malformed_rate=1.0
        )
        answer = garbled.answer(QUERY)
        assert not all(isinstance(item, OEMObject) for item in answer)

    def test_forwards_identity_and_capability(self):
        inner = make_wrapper("whois")
        faulty = FaultInjectingSource(inner, seed=0)
        assert faulty.name == "whois"
        assert faulty.capability is inner.capability
        assert faulty.schema_facts is inner.schema_facts

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjectingSource(make_wrapper(), fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjectingSource(make_wrapper(), latency=-1)


class TestResilientSource:
    def make_resilient(self, faulty, **kwargs):
        clock = kwargs.pop("clock", None) or ManualClock()
        kwargs.setdefault(
            "policy", RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        )
        kwargs.setdefault(
            "breaker",
            CircuitBreaker(failure_threshold=5, cooldown=60, clock=clock),
        )
        return ResilientSource(faulty, clock=clock, **kwargs)

    def test_transient_fault_is_retried_to_success(self):
        faulty = FaultInjectingSource(make_wrapper(), seed=3, fault_rate=0.5)
        resilient = self.make_resilient(faulty)
        for _ in range(10):
            assert len(resilient.answer(QUERY)) == 1
        assert "fault" in faulty.outcomes  # retries really happened

    def test_exhausted_retries_raise_source_unavailable(self):
        faulty = FaultInjectingSource(make_wrapper(), seed=0, dead=True)
        resilient = self.make_resilient(faulty)
        with pytest.raises(SourceUnavailable) as info:
            resilient.answer(QUERY)
        assert info.value.source == "src"
        assert info.value.attempts == 3
        assert faulty.calls == 3

    def test_backoff_consumes_manual_clock_time(self):
        clock = ManualClock()
        faulty = FaultInjectingSource(make_wrapper(), seed=0, dead=True)
        resilient = self.make_resilient(faulty, clock=clock)
        with pytest.raises(SourceUnavailable):
            resilient.answer(QUERY)
        # two retries: 0.1s then 0.2s of (simulated) backoff
        assert clock.sleeps == [0.1, 0.2]

    def test_deadline_budget_stops_retrying(self):
        clock = ManualClock()
        faulty = FaultInjectingSource(
            make_wrapper(), seed=0, dead=True, latency=1.0, clock=clock
        )
        resilient = self.make_resilient(
            faulty,
            clock=clock,
            policy=RetryPolicy(
                max_attempts=10, base_delay=0.5, jitter=0.0, deadline=1.2
            ),
        )
        with pytest.raises(SourceUnavailable):
            resilient.answer(QUERY)
        # first attempt takes 1.0s; a 0.5s backoff would overshoot 1.2s
        assert faulty.calls == 1

    def test_slow_answer_is_a_timeout_failure(self):
        clock = ManualClock()
        faulty = FaultInjectingSource(
            make_wrapper(), seed=0, latency=2.0, clock=clock
        )
        resilient = self.make_resilient(
            faulty,
            clock=clock,
            timeout=1.0,
            policy=RetryPolicy(max_attempts=2, base_delay=0.1, jitter=0.0),
        )
        with pytest.raises(SourceUnavailable) as info:
            resilient.answer(QUERY)
        assert isinstance(info.value.cause, SourceTimeoutError)

    def test_malformed_answer_is_retried(self):
        faulty = FaultInjectingSource(
            make_wrapper(), seed=9, malformed_rate=1.0
        )
        resilient = self.make_resilient(faulty)
        with pytest.raises(SourceUnavailable) as info:
            resilient.answer(QUERY)
        assert isinstance(info.value.cause, MalformedResponseError)
        assert faulty.calls == 3

    def test_breaker_rejects_without_touching_the_source(self):
        clock = ManualClock()
        faulty = FaultInjectingSource(make_wrapper(), seed=0, dead=True)
        breaker = CircuitBreaker(failure_threshold=3, cooldown=60,
                                 clock=clock)
        resilient = self.make_resilient(
            faulty, clock=clock, breaker=breaker,
            policy=RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0),
        )
        with pytest.raises(SourceUnavailable):
            resilient.answer(QUERY)
        assert breaker.state == OPEN
        calls_when_open = faulty.calls
        with pytest.raises(SourceUnavailable):
            resilient.answer(QUERY)
        assert faulty.calls == calls_when_open  # short-circuited

    def test_breaker_half_open_probe_recovers(self):
        clock = ManualClock()
        faulty = FaultInjectingSource(make_wrapper(), seed=0, dead=True)
        breaker = CircuitBreaker(failure_threshold=2, cooldown=30,
                                 clock=clock)
        resilient = self.make_resilient(
            faulty, clock=clock, breaker=breaker,
            policy=RetryPolicy(max_attempts=2, base_delay=0.1, jitter=0.0),
        )
        with pytest.raises(SourceUnavailable):
            resilient.answer(QUERY)
        assert breaker.state == OPEN
        clock.advance(30)
        assert breaker.state == HALF_OPEN
        faulty.dead = False  # the source came back
        assert len(resilient.answer(QUERY)) == 1
        assert breaker.state == CLOSED

    def test_health_registry_records_everything(self):
        health = HealthRegistry()
        faulty = FaultInjectingSource(make_wrapper(), seed=3, fault_rate=0.5)
        resilient = self.make_resilient(faulty, health=health)
        for _ in range(10):
            resilient.answer(QUERY)
        status = health.status("src")
        assert status.successes == 10
        assert status.failures >= 1
        assert status.retries == status.failures
        assert status.attempts == status.successes + status.failures
        assert status.breaker_state == CLOSED
        assert "src" in health.render()

    def test_export_goes_through_the_same_defenses(self):
        faulty = FaultInjectingSource(make_wrapper(), seed=0, dead=True)
        resilient = self.make_resilient(faulty)
        with pytest.raises(SourceUnavailable):
            resilient.export()

    def test_stats_include_breaker_state(self):
        resilient = self.make_resilient(
            FaultInjectingSource(make_wrapper(), seed=0)
        )
        resilient.answer(QUERY)
        stats = resilient.stats()
        assert stats["breaker_state"] == CLOSED
        assert stats["resilient_attempts"] == 1


class TestResilienceManager:
    def test_wrap_is_cached_per_source(self):
        manager = ResilienceManager(ResilienceConfig(), clock=ManualClock())
        wrapper = make_wrapper()
        assert manager.wrap(wrapper) is manager.wrap(wrapper)
        assert manager.breaker_for("src") is manager.wrap(wrapper).breaker

    def test_describe_mentions_the_policy(self):
        manager = ResilienceManager(
            ResilienceConfig(
                retry=RetryPolicy(max_attempts=4), timeout=2.0,
                breaker_threshold=7,
            )
        )
        text = manager.describe()
        assert "retries: 3" in text
        assert "timeout: 2s" in text
        assert "open after 7" in text


class TestSourceWarning:
    def test_render(self):
        warning = SourceWarning(
            source="whois", message="down", attempts=3, error="SourceError"
        )
        assert "whois" in warning.render()
        assert "3 attempt(s)" in warning.render()

    def test_render_omits_repeat_suffix_for_single_warning(self):
        warning = SourceWarning(source="whois", message="down")
        assert "[x" not in warning.render()

    def test_render_pins_repeat_suffix_format(self):
        warning = SourceWarning(
            source="whois", message="down", attempts=6, count=3
        )
        assert warning.render() == (
            "source 'whois' degraded after 6 attempt(s): down [x3]"
        )


class TestAggregateWarnings:
    def test_folds_identical_signatures_and_sums_fields(self):
        folded = aggregate_warnings(
            [
                SourceWarning(
                    source="whois", message="down",
                    attempts=2, error="SourceError",
                )
                for _ in range(3)
            ]
        )
        assert len(folded) == 1
        assert folded[0].count == 3
        assert folded[0].attempts == 6
        assert folded[0].render().endswith("[x3]")

    def test_keeps_first_seen_order_across_interleaved_sources(self):
        def warn(source):
            return SourceWarning(
                source=source, message="down", error="SourceError"
            )

        folded = aggregate_warnings(
            [warn("b"), warn("a"), warn("b"), warn("c"), warn("a")]
        )
        assert [w.source for w in folded] == ["b", "a", "c"]
        assert [w.count for w in folded] == [2, 2, 1]

    def test_distinct_error_classes_stay_separate(self):
        folded = aggregate_warnings(
            [
                SourceWarning(source="a", message="x", error="SourceError"),
                SourceWarning(source="a", message="x", error="TimeoutError"),
            ]
        )
        assert len(folded) == 2
        assert all(w.count == 1 for w in folded)

    def test_objects_without_signature_pass_through_in_place(self):
        sentinel = object()
        first = SourceWarning(source="a", message="x", error="E")
        folded = aggregate_warnings([first, sentinel, first])
        assert folded[0].source == "a"
        assert folded[0].count == 2
        assert folded[1] is sentinel


class TestRegistrySnapshots:
    def test_reset_all_counters(self):
        registry = SourceRegistry(make_wrapper("a"), make_wrapper("b"))
        for source in registry:
            source.answer(QUERY)
        assert all(
            s["queries_answered"] == 1
            for s in registry.stats_snapshot().values()
        )
        registry.reset_all_counters()
        assert all(
            s["queries_answered"] == 0
            for s in registry.stats_snapshot().values()
        )

    def test_snapshot_includes_resilient_sources(self):
        registry = SourceRegistry()
        resilient = ResilientSource(make_wrapper(), clock=ManualClock())
        registry.register(resilient)
        resilient.answer(QUERY)
        stats = registry.stats_snapshot()["src"]
        assert stats["queries_answered"] == 1
        assert stats["breaker_state"] == CLOSED
        registry.reset_all_counters()
        assert registry.stats_snapshot()["src"]["queries_answered"] == 0


class TestMediatorQueryAdmission:
    def test_unparsable_query_raises_mediator_error(self):
        scenario = build_scenario()
        with pytest.raises(MediatorError) as info:
            scenario.mediator.answer("X :- X:<cs_person {< }>@med")
        message = str(info.value)
        assert "invalid MSL query" in message
        assert "line" in message  # the source position survived
        assert info.value.line >= 1

    def test_explain_wraps_parse_errors_too(self):
        scenario = build_scenario()
        with pytest.raises(MediatorError):
            scenario.mediator.explain("@@@ not msl @@@")

    def test_semantic_error_is_wrapped(self):
        scenario = build_scenario()
        # head variable Y never bound in the tail: a semantic error
        with pytest.raises(MediatorError) as info:
            scenario.mediator.answer("<a Y> :- <cs_person {<name N>}>@med")
        assert "invalid MSL query" in str(info.value)

    def test_valid_queries_still_answer(self):
        scenario = build_scenario()
        assert len(scenario.mediator.answer(JOE_CHUNG_QUERY)) == 1


class TestMediatorResilienceSurface:
    def test_rejects_unknown_failure_mode(self):
        with pytest.raises(MediatorError):
            Mediator(
                "m",
                "<a X> :- <rec {<name X>}>@src ;",
                SourceRegistry(make_wrapper()),
                on_source_failure="explode",
            )

    def test_query_returns_result_set_with_warnings(self):
        registry = SourceRegistry()
        registry.register(
            FaultInjectingSource(make_wrapper(), seed=0, dead=True)
        )
        mediator = Mediator(
            "m",
            "<a X> :- <rec {<name X>}>@src ;",
            registry,
            on_source_failure="degrade",
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=2, base_delay=0.1, jitter=0.0)
            ),
            clock=ManualClock(),
        )
        results = mediator.query("X :- X:<a V>@m")
        assert len(results) == 0
        assert not results.complete
        assert results.warnings[0].source == "src"
        assert results.warnings[0].attempts == 2
        assert "degraded" in results.render_warnings()
        assert "warning" in repr(results)

    def test_explain_reports_resilience_section(self):
        registry = SourceRegistry(make_wrapper())
        mediator = Mediator(
            "m",
            "<a X> :- <rec {<name X>}>@src ;",
            registry,
            on_source_failure="degrade",
            resilience=ResilienceConfig(timeout=1.5),
            clock=ManualClock(),
        )
        text = mediator.explain("X :- X:<a V>@m")
        assert "-- resilience --" in text
        assert "on_source_failure=degrade" in text
        assert "timeout: 1.5s" in text

    def test_explain_has_no_resilience_section_by_default(self):
        scenario = build_scenario()
        assert "-- resilience --" not in scenario.mediator.explain(
            JOE_CHUNG_QUERY
        )

    def test_trace_entries_record_attempts_and_latency(self):
        clock = ManualClock()
        registry = SourceRegistry()
        registry.register(
            FaultInjectingSource(
                make_wrapper(), seed=0, latency=0.5, clock=clock
            )
        )
        mediator = Mediator(
            "m",
            "<a X> :- <rec {<name X>}>@src ;",
            registry,
            trace=True,
            resilience=ResilienceConfig(),
            clock=clock,
        )
        mediator.answer("X :- X:<a V>@m")
        trace = mediator.last_context.trace
        touched = [entry for entry in trace if entry.attempts]
        assert touched, "some node must have queried the source"
        assert touched[0].attempts == 1
        assert touched[0].latency == pytest.approx(0.5)


class TestLatencyPercentiles:
    def test_percentiles_over_recorded_latencies(self):
        registry = HealthRegistry()
        for latency in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0):
            registry.record_success("src", latency)
        status = registry.status("src")
        assert status.p50_latency == pytest.approx(0.5)
        assert status.p95_latency == pytest.approx(1.0)
        assert status.max_latency == pytest.approx(1.0)

    def test_failures_count_toward_the_window(self):
        registry = HealthRegistry()
        registry.record_success("src", 0.1)
        registry.record_failure("src", "boom", 0.9)
        status = registry.status("src")
        assert status.max_latency == pytest.approx(0.9)
        assert status.total_latency == pytest.approx(1.0)

    def test_fresh_record_reports_zeroes(self):
        registry = HealthRegistry()
        status = registry.status("src")
        assert status.p50_latency == 0.0
        assert status.p95_latency == 0.0
        assert status.max_latency == 0.0

    def test_quantile_must_be_a_fraction(self):
        registry = HealthRegistry()
        registry.record_success("src", 0.1)
        with pytest.raises(ValueError):
            registry.status("src").latency_percentile(1.5)

    def test_window_is_bounded(self):
        from repro.reliability.health import LATENCY_WINDOW

        registry = HealthRegistry()
        for i in range(LATENCY_WINDOW + 25):
            registry.record_success("src", float(i))
        record = registry.record_for("src")
        assert len(record.latencies) == LATENCY_WINDOW
        # the window slides: only the most recent samples remain
        assert min(record.latencies) == 25.0

    def test_status_is_frozen_in_time(self):
        registry = HealthRegistry()
        registry.record_success("src", 0.1)
        status = registry.status("src")
        registry.record_success("src", 9.9)
        assert status.max_latency == pytest.approx(0.1)

    def test_render_includes_percentiles(self):
        registry = HealthRegistry()
        registry.record_success("src", 0.25)
        rendered = registry.render()
        assert "p50=" in rendered
        assert "p95=" in rendered
        assert "max=" in rendered

    def test_explain_surfaces_percentiles(self):
        clock = ManualClock()
        registry = SourceRegistry()
        registry.register(
            FaultInjectingSource(
                make_wrapper(), seed=0, latency=0.5, clock=clock
            )
        )
        mediator = Mediator(
            "m",
            "<a X> :- <rec {<name X>}>@src ;",
            registry,
            resilience=ResilienceConfig(),
            clock=clock,
        )
        mediator.answer("X :- X:<a V>@m")
        assert "p50=0.5000s" in mediator.explain("X :- X:<a V>@m")

"""Unit tests for the plan-observability subsystem (:mod:`repro.obs.insight`).

Covers EXPLAIN ANALYZE (report shape, rendering, per-constituent
attribution under fusion), q-error tracking into the statistics store
and the telemetry registry, mid-query misestimate events with stage
re-ranking, the observed-cost feedback loop into the optimizer, and
statistics snapshot/restore persistence.
"""

import json
from types import SimpleNamespace

import pytest

from repro.datasets import JOE_CHUNG_QUERY, MS1, build_scenario
from repro.datasets.staff import build_scaled_scenario
from repro.mediator import Mediator, MediatorError, SourceStatistics
from repro.mediator.engine import ExecutionContext, _rerank_stage
from repro.mediator.statistics import qerror
from repro.obs import AnalyzeReport, QueryInsight
from repro.oem import structural_key

ALL_QUERY = "ALL :- ALL:<cs_person {}>@med"


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def fresh_mediator(scenario, **kwargs):
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        register=False,
        **kwargs,
    )


# -- q-error ------------------------------------------------------------------


class TestQError:
    def test_symmetric_factor(self):
        assert qerror(10, 10) == 1.0
        assert qerror(2, 8) == 4.0
        assert qerror(8, 2) == 4.0

    def test_zero_rows_are_floored(self):
        assert qerror(0, 0) == 1.0
        assert qerror(1, 0) == 2.0  # act floored at 0.5
        assert qerror(0, 5) == 10.0  # est floored at 0.5


# -- EXPLAIN ANALYZE ----------------------------------------------------------


class TestExplainAnalyze:
    def test_answers_match_plain_query(self):
        expected = canonical(build_scenario().mediator.answer(
            JOE_CHUNG_QUERY
        ))
        report = build_scenario().mediator.explain_analyze(
            JOE_CHUNG_QUERY
        )
        assert canonical(report.objects) == expected
        assert report.seconds > 0.0

    def test_nodes_carry_estimates_and_actuals(self):
        report = build_scenario().mediator.explain_analyze(
            JOE_CHUNG_QUERY
        )
        doc = report.to_dict()
        assert doc["version"] == 1
        assert doc["result_objects"] == 1
        estimated = [
            n for n in doc["nodes"] if n["estimated_rows"] is not None
        ]
        assert estimated
        # leaf estimates name their statistics bucket
        keyed = [n for n in estimated if n["estimate"] is not None]
        assert any(
            n["estimate"]["source"] == "whois"
            and n["estimate"]["label"] == "person"
            and n["estimate"]["kind"] == "scan"
            for n in keyed
        )
        executed = [n for n in doc["nodes"] if n["calls"]]
        assert executed
        assert all(n["qerror"] is None or n["qerror"] >= 1.0
                   for n in doc["nodes"])

    def test_fused_constituents_attributed_per_stage(self):
        # default fuse=True: straight-line segments become one pipeline
        # node, but analyze still reports each constituent separately
        # under a dotted key, with its own rows/time
        report = build_scenario().mediator.explain_analyze(
            JOE_CHUNG_QUERY
        )
        doc = report.to_dict()
        containers = [n for n in doc["nodes"] if n["constituents"]]
        assert containers
        by_key = {n["key"]: n for n in doc["nodes"]}
        ran = False
        for container in containers:
            for key in container["constituents"]:
                member = by_key[key]
                assert member["parent"] == container["key"]
                assert "." in member["key"]
                if member["calls"]:
                    ran = True
        assert ran

    def test_render_is_an_annotated_tree(self):
        report = build_scenario().mediator.explain_analyze(
            JOE_CHUNG_QUERY
        )
        text = report.render()
        assert "-- explain analyze:" in text
        assert "est" in text and "actual" in text and "miss" in text
        assert "[1]" in text

    def test_json_round_trips(self):
        report = build_scenario().mediator.explain_analyze(
            JOE_CHUNG_QUERY
        )
        doc = json.loads(report.to_json())
        assert doc == json.loads(json.dumps(report.to_dict()))

    def test_empty_insight_renders_fallback(self):
        report = AnalyzeReport("Q", QueryInsight(), [])
        assert "no physical plan" in report.render()

    def test_qerror_metrics_exported(self):
        med = fresh_mediator(build_scenario(), telemetry=True)
        med.answer(JOE_CHUNG_QUERY)
        text = med.metrics_text()
        assert "repro_estimate_qerror_bucket" in text
        assert 'kind="scan"' in text
        med.close()

    def test_explain_shows_statistics_section(self):
        med = build_scenario().mediator
        med.answer(JOE_CHUNG_QUERY)
        text = med.explain(JOE_CHUNG_QUERY)
        assert "-- statistics --" in text
        assert "q-error" in text


# -- misestimate events and re-ranking ----------------------------------------


class TestMisestimates:
    def test_underestimate_fires_event(self):
        # 60 persons behind an estimate discounted by the constant
        # conditions: actual exceeds the estimate far beyond 4x
        med = build_scaled_scenario(60).mediator
        report = med.explain_analyze(ALL_QUERY)
        doc = report.to_dict()
        assert doc["misestimates"]
        event = doc["misestimates"][0]
        assert event["actual_rows"] > event["estimated_rows"] * 4
        assert "correction" in event["action"]
        context = med.last_context
        assert context.misestimate_events >= 1
        assert context.estimate_corrections
        assert "misestimate events:" in report.render()

    def test_factor_zero_disables_detection(self):
        scenario = build_scaled_scenario(60)
        med = fresh_mediator(scenario, misestimate_factor=0)
        report = med.explain_analyze(ALL_QUERY)
        assert report.to_dict()["misestimates"] == []
        assert med.last_context.misestimate_events == 0

    def test_invalid_factor_rejected(self):
        scenario = build_scenario()
        with pytest.raises(MediatorError):
            fresh_mediator(scenario, misestimate_factor=-1)
        with pytest.raises(MediatorError):
            fresh_mediator(scenario, misestimate_factor="big")

    def test_analyze_off_still_detects(self):
        # the adaptive loop is driven by misestimate_factor, not by
        # --explain-analyze: a plain query records events too
        med = build_scaled_scenario(60).mediator
        med.answer(ALL_QUERY)
        assert med.last_context.misestimate_events >= 1


class TestRerankStage:
    def node(self, est, key):
        return SimpleNamespace(estimated_rows=est, estimate_key=key)

    def context(self, corrections):
        context = ExecutionContext(sources=None, externals=None)
        context.estimate_corrections.update(corrections)
        return context

    def test_corrected_estimates_reorder_cheapest_first(self):
        small = self.node(5.0, ("s", "a", "join"))
        ballooned = self.node(2.0, ("s", "b", "join"))
        context = self.context({("s", "b"): 100.0})
        reranked = _rerank_stage(2, [ballooned, small], context)
        assert reranked == [small, ballooned]

    def test_unaffected_stage_is_untouched(self):
        stage = [self.node(9.0, ("s", "a", "join")),
                 self.node(1.0, ("s", "b", "join"))]
        context = self.context({("other", "x"): 50.0})
        assert _rerank_stage(2, stage, context) is stage

    def test_estimate_free_nodes_sort_last_stably(self):
        bare_a = self.node(None, None)
        bare_b = self.node(None, None)
        cheap = self.node(1.0, ("s", "a", "join"))
        context = self.context({("s", "a"): 1.0})
        reranked = _rerank_stage(3, [bare_a, bare_b, cheap], context)
        assert reranked == [cheap, bare_a, bare_b]

    def test_decision_recorded_in_insight(self):
        # unregistered nodes fall back to their type names in the
        # decision record, so give the two fakes distinct types
        ballooned = type("Ballooned", (SimpleNamespace,), {})(
            estimated_rows=2.0, estimate_key=("s", "b", "join")
        )
        small = type("Small", (SimpleNamespace,), {})(
            estimated_rows=5.0, estimate_key=("s", "a", "join")
        )
        insight = QueryInsight()
        context = self.context({("s", "b"): 100.0})
        context.insight = insight
        _rerank_stage(2, [ballooned, small], context)
        assert insight.reranks
        decision = insight.reranks[0]
        assert decision["stage"] == 2
        assert decision["before"] == ["Ballooned", "Small"]
        assert decision["after"] == ["Small", "Ballooned"]


# -- the statistics feedback loop ---------------------------------------------


class TestFeedbackLoop:
    def test_qerror_median_non_increasing_after_warmup(self):
        # acceptance: repeated runs feed observed cardinalities back
        # into the statistics store, so estimates converge and the
        # cumulative median q-error never grows after the first run
        med = build_scaled_scenario(40).mediator
        medians = []
        for _ in range(4):
            med.answer(ALL_QUERY)
            summary = med.statistics.qerror_summary()
            key = next(k for k in summary if k.endswith("/scan"))
            medians.append(summary[key]["median"])
        assert medians[0] > 1.0  # cold estimates start wrong
        for earlier, later in zip(medians[1:], medians[2:]):
            assert later <= earlier

    def test_cost_weight_from_latency_and_breaker(self):
        stats = SourceStatistics()
        assert stats.cost_weight("never-seen") == 1.0
        stats.observe_source("slow", latency=0.1)
        stats.observe_source("fast", latency=0.001)
        assert stats.cost_weight("slow") > stats.cost_weight("fast") > 1.0
        stats.observe_source("down", breaker_state="open")
        assert stats.cost_weight("down") == 100.0
        stats.observe_source("probing", breaker_state="half_open")
        assert stats.cost_weight("probing") == 10.0

    def test_observed_latency_deprioritizes_a_source(self):
        # two otherwise-identical sources: the one observed slow must
        # rank later once the feedback loop has run
        stats = SourceStatistics()
        stats.observe_source("whois", latency=0.5, breaker_state="closed")
        assert stats.cost_weight("whois") > 10.0

    def test_health_window_feeds_statistics(self):
        from repro.reliability import ResilienceConfig, RetryPolicy

        scenario = build_scenario()
        med = fresh_mediator(
            scenario,
            resilience=ResilienceConfig(retry=RetryPolicy(max_attempts=2)),
        )
        for _ in range(4):  # p50 needs min_samples=3 in the window
            med.answer(JOE_CHUNG_QUERY)
        snapshot = med.statistics.snapshot_dict()
        observed = {row["source"] for row in snapshot["source_costs"]}
        assert "whois" in observed and "cs" in observed
        assert med.statistics.cost_weight("whois") >= 1.0


class TestStatisticsPersistence:
    def build(self):
        stats = SourceStatistics()
        stats.record_label("whois", "person", 42)
        stats.observe_source("whois", latency=0.02, breaker_state="closed")
        stats.record_qerror("whois", "person", "scan", 3.0)
        return stats

    def test_snapshot_round_trips_through_json(self):
        stats = self.build()
        snapshot = json.loads(json.dumps(stats.snapshot_dict()))
        assert snapshot["version"] == 1
        fresh = SourceStatistics()
        fresh.restore_dict(snapshot)
        assert fresh.has_observations("whois", "person")
        assert fresh.cost_weight("whois") == pytest.approx(
            stats.cost_weight("whois")
        )

    def test_mediator_snapshot_restore(self):
        scenario = build_scenario()
        warm = scenario.mediator
        warm.answer(JOE_CHUNG_QUERY)
        snapshot = warm.statistics_snapshot()
        assert snapshot["labels"]
        cold = fresh_mediator(scenario)
        assert not cold.statistics.has_observations("whois", "person")
        cold.restore_statistics(snapshot)
        assert cold.statistics.has_observations("whois", "person")

    def test_restore_rejects_bad_snapshots(self):
        med = build_scenario().mediator
        with pytest.raises(MediatorError):
            med.restore_statistics({"version": 99})
        with pytest.raises(MediatorError):
            med.restore_statistics("not-a-snapshot")
        with pytest.raises(MediatorError):
            med.restore_statistics({"version": 1, "labels": [{}]})

"""Unit tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main

SPEC = """
<cs_person {<name N> <rel R> | Rest1}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois ;
"""

WHOIS = """
<&p1, person, set, {&n1,&d1,&rel1}>
  <&n1, name, string, 'Joe Chung'>
  <&d1, dept, string, 'CS'>
  <&rel1, relation, string, 'employee'>
;
"""


@pytest.fixture
def files(tmp_path):
    spec = tmp_path / "med.msl"
    spec.write_text(SPEC)
    whois = tmp_path / "whois.oem"
    whois.write_text(WHOIS)
    return spec, whois


def run(argv, stdin_text=""):
    stdout, stderr = io.StringIO(), io.StringIO()
    status = main(
        argv, stdout=stdout, stderr=stderr, stdin=io.StringIO(stdin_text)
    )
    return status, stdout.getvalue(), stderr.getvalue()


class TestCLI:
    def test_query_flag(self, files):
        spec, whois = files
        status, out, err = run(
            [
                "--spec", str(spec),
                "--source", f"whois={whois}",
                "--query", "X :- X:<cs_person {<name 'Joe Chung'>}>@med",
                "--format", "inline",
            ]
        )
        assert status == 0, err
        assert "'Joe Chung'" in out
        assert "cs_person" in out

    def test_export_flag(self, files):
        spec, whois = files
        status, out, _ = run(
            ["--spec", str(spec), "--source", f"whois={whois}", "--export"]
        )
        assert status == 0
        assert out.count("cs_person") == 1

    def test_python_format(self, files):
        spec, whois = files
        status, out, _ = run(
            [
                "--spec", str(spec),
                "--source", f"whois={whois}",
                "--export",
                "--format", "python",
            ]
        )
        assert status == 0
        assert "{'name': 'Joe Chung', 'rel': 'employee'}" in out

    def test_explain_flag(self, files):
        spec, whois = files
        status, out, _ = run(
            [
                "--spec", str(spec),
                "--source", f"whois={whois}",
                "--query", "X :- X:<cs_person {<name N>}>@med",
                "--explain",
            ]
        )
        assert status == 0
        assert "logical datamerge program" in out
        assert "physical datamerge graph" in out

    def test_stdin_queries(self, files):
        spec, whois = files
        status, out, _ = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--format", "inline"],
            stdin_text="X :- X:<cs_person {<rel 'employee'>}>@med\n\n",
        )
        assert status == 0
        assert "cs_person" in out

    def test_facts_suffix(self, files, tmp_path):
        spec, whois = files
        status, out, _ = run(
            [
                "--spec", str(spec),
                "--source", f"whois={whois}:facts",
                "--export",
            ]
        )
        assert status == 0

    def test_missing_spec_file(self, files, tmp_path):
        _, whois = files
        status, _, err = run(
            ["--spec", str(tmp_path / "ghost.msl"), "--source", f"w={whois}"]
        )
        assert status == 2
        assert "cannot read" in err

    def test_bad_source_syntax(self, files):
        spec, _ = files
        status, _, err = run(["--spec", str(spec), "--source", "nonsense"])
        assert status == 2
        assert "NAME=FILE" in err

    def test_missing_source_file(self, files, tmp_path):
        spec, _ = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"w={tmp_path / 'no.oem'}"]
        )
        assert status == 2

    def test_unparseable_source_file(self, files, tmp_path):
        spec, _ = files
        bad = tmp_path / "bad.oem"
        bad.write_text("<<<not oem>>>")
        status, _, err = run(
            ["--spec", str(spec), "--source", f"w={bad}"]
        )
        assert status == 2
        assert "cannot parse" in err

    def test_bad_specification(self, files, tmp_path):
        _, whois = files
        bad = tmp_path / "bad.msl"
        bad.write_text("<a X> :- <b Y>@whois")  # unsafe head variable
        status, _, err = run(
            ["--spec", str(bad), "--source", f"whois={whois}"]
        )
        assert status == 2
        assert "bad specification" in err

    def test_bad_query_reports_and_continues(self, files):
        spec, whois = files
        status, out, err = run(
            [
                "--spec", str(spec),
                "--source", f"whois={whois}",
                "--query", "garbage :-",
                "--query", "X :- X:<cs_person {<name N>}>@med",
                "--format", "inline",
            ]
        )
        assert status == 1  # one query failed
        assert "error" in err
        assert "cs_person" in out  # the good query still ran


class TestResilienceFlags:
    def test_flags_on_healthy_sources_change_nothing(self, files):
        spec, whois = files
        argv = [
            "--spec", str(spec),
            "--source", f"whois={whois}",
            "--query", "X :- X:<cs_person {<name 'Joe Chung'>}>@med",
            "--format", "inline",
        ]
        plain = run(argv)
        defended = run(
            argv + ["--retries", "2", "--source-timeout", "5", "--degrade"]
        )
        assert plain[0] == defended[0] == 0
        assert plain[1] == defended[1]
        assert defended[2] == ""  # healthy sources: no warnings

    def test_negative_retries_rejected(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", "X :- X:<cs_person {<name N>}>@med",
             "--retries", "-1"]
        )
        assert status == 2
        assert "--retries" in err

    def test_non_positive_timeout_rejected(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", "X :- X:<cs_person {<name N>}>@med",
             "--source-timeout", "0"]
        )
        assert status == 2
        assert "--source-timeout" in err

    def test_explain_shows_resilience_section(self, files):
        spec, whois = files
        status, out, _ = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", "X :- X:<cs_person {<name N>}>@med",
             "--explain", "--retries", "1", "--degrade"]
        )
        assert status == 0
        assert "-- resilience --" in out
        assert "on_source_failure=degrade" in out

    def test_unparsable_query_reports_position(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", "X :- X:<cs_person {< }>@med"]
        )
        assert status == 1
        assert "invalid MSL query" in err
        assert "line 1" in err


class TestGovernorFlags:
    QUERY = "X :- X:<cs_person {<name N>}>@med"

    def test_budget_flags_on_small_query_change_nothing(self, files):
        spec, whois = files
        argv = [
            "--spec", str(spec),
            "--source", f"whois={whois}",
            "--query", self.QUERY,
            "--format", "inline",
        ]
        plain = run(argv)
        governed = run(
            argv
            + ["--deadline", "60", "--max-rows", "1000",
               "--max-total-rows", "10000", "--max-result-objects", "100"]
        )
        assert plain[0] == governed[0] == 0
        assert plain[1] == governed[1]
        assert governed[2] == ""  # within budget: no warnings

    def test_strict_budget_exceeded_fails_query(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--max-total-rows", "1"]
        )
        assert status == 1
        assert "budget" in err
        assert "max_total_rows" in err

    def test_truncate_mode_finishes_with_warnings(self, files):
        spec, whois = files
        status, out, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--max-total-rows", "1",
             "--budget-mode", "truncate", "--format", "inline"]
        )
        assert status == 0
        assert "warning:" in err
        assert "max_total_rows" in err

    def test_max_result_objects_truncates_answer(self, files):
        spec, whois = files
        status, out, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--max-result-objects", "1",
             "--budget-mode", "truncate", "--format", "inline"]
        )
        assert status == 0
        assert out.count("cs_person") <= 1

    def test_non_positive_budget_values_rejected(self, files):
        spec, whois = files
        for flag in ("--max-rows", "--max-total-rows",
                     "--max-result-objects"):
            status, _, err = run(
                ["--spec", str(spec), "--source", f"whois={whois}",
                 "--query", self.QUERY, flag, "0"]
            )
            assert status == 2
            assert flag in err
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--deadline", "-1"]
        )
        assert status == 2
        assert "--deadline" in err

    def test_explain_shows_governor_section(self, files):
        spec, whois = files
        status, out, _ = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--explain",
             "--max-total-rows", "50", "--budget-mode", "truncate"]
        )
        assert status == 0
        assert "-- governor --" in out
        assert "max_total_rows=50" in out
        assert "mode: truncate" in out

    def test_quarantine_flag_accepted(self, files):
        spec, whois = files
        status, out, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--quarantine-malformed",
             "--format", "inline"]
        )
        assert status == 0
        assert "cs_person" in out  # well-formed file: nothing quarantined
        assert err == ""


class TestObservabilityFlags:
    QUERY = "X :- X:<cs_person {<name N>}>@med"

    def test_trace_out_writes_parseable_span_tree(self, files, tmp_path):
        spec, whois = files
        trace = tmp_path / "trace.jsonl"
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--trace-out", str(trace)]
        )
        assert status == 0, err
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line
        ]
        assert records, "trace file is empty"
        assert all(r["record"] == "span" for r in records)
        kinds = {r["kind"] for r in records}
        assert "query" in kinds
        assert "source-call" in kinds
        roots = [r for r in records if r["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["status"] == "ok"
        ids = {r["span_id"] for r in records}
        assert all(
            r["parent_id"] in ids
            for r in records
            if r["parent_id"] is not None
        )

    def test_metrics_out_writes_prometheus_text(self, files, tmp_path):
        spec, whois = files
        metrics = tmp_path / "metrics.prom"
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--metrics-out", str(metrics)]
        )
        assert status == 0, err
        text = metrics.read_text()
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{status="ok"} 1' in text
        assert 'repro_source_calls_total{source="whois"}' in text

    def test_sample_rate_zero_keeps_no_spans(self, files, tmp_path):
        spec, whois = files
        trace = tmp_path / "trace.jsonl"
        status, _, _ = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--trace-out", str(trace),
             "--trace-sample-rate", "0"]
        )
        assert status == 0
        assert trace.read_text() == ""

    def test_slow_query_log_reports_on_stderr(self, files, tmp_path):
        spec, whois = files
        trace = tmp_path / "trace.jsonl"
        # threshold 0ms: every query is "slow", even unsampled ones
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--trace-out", str(trace),
             "--trace-sample-rate", "0", "--slow-query-ms", "0"]
        )
        assert status == 0
        assert "slow query" in err
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line
        ]
        assert len(records) == 1  # the slow root survived sampling
        assert records[0]["kind"] == "query"
        assert records[0]["attributes"]["slow"] is True

    def test_bad_sample_rate_rejected(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--trace-sample-rate", "1.5"]
        )
        assert status == 2
        assert "--trace-sample-rate" in err

    def test_negative_slow_query_ms_rejected(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--slow-query-ms", "-1"]
        )
        assert status == 2
        assert "--slow-query-ms" in err

    def test_no_obs_flags_leaves_telemetry_disabled(self, files):
        spec, whois = files
        status, out, _ = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--explain"]
        )
        assert status == 0
        assert "telemetry: disabled" in out


class TestServingFlags:
    QUERY = "X :- X:<cs_person {<name N>}>@med"

    def test_admission_flags_on_light_load_change_nothing(self, files):
        spec, whois = files
        argv = [
            "--spec", str(spec),
            "--source", f"whois={whois}",
            "--query", self.QUERY,
            "--format", "inline",
        ]
        plain = run(argv)
        gated = run(
            argv + ["--max-concurrent", "2", "--queue-depth", "4",
                    "--tenant", "cli", "--priority", "3"]
        )
        assert plain[0] == gated[0] == 0
        assert plain[1] == gated[1]
        assert gated[2] == ""  # nothing shed: no errors

    def test_explain_shows_serving_section(self, files):
        spec, whois = files
        status, out, _ = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--explain", "--max-concurrent", "2"]
        )
        assert status == 0
        assert "-- serving --" in out
        assert "admission:" in out

    def test_non_positive_max_concurrent_rejected(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--max-concurrent", "0"]
        )
        assert status == 2
        assert "--max-concurrent" in err

    def test_queue_depth_requires_max_concurrent(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--queue-depth", "4"]
        )
        assert status == 2
        assert "--queue-depth" in err
        assert "--max-concurrent" in err

    def test_negative_queue_depth_rejected(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--max-concurrent", "2",
             "--queue-depth", "-1"]
        )
        assert status == 2
        assert "--queue-depth" in err

    def test_blank_tenant_rejected(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--tenant", "  "]
        )
        assert status == 2
        assert "--tenant" in err

    def test_metrics_include_admission_series_when_gated(
        self, files, tmp_path
    ):
        spec, whois = files
        metrics = tmp_path / "metrics.prom"
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--max-concurrent", "2",
             "--metrics-out", str(metrics)]
        )
        assert status == 0, err
        text = metrics.read_text()
        assert "repro_admission_submitted_total 1" in text
        assert "repro_admission_concurrency_limit" in text


class TestExplainAnalyzeFlags:
    QUERY = "X :- X:<cs_person {<name 'Joe Chung'>}>@med"

    def test_explain_analyze_prints_answer_and_tree(self, files):
        spec, whois = files
        status, out, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--explain-analyze"]
        )
        assert status == 0, err
        assert "Joe Chung" in out  # the answer still comes first
        assert "-- explain analyze:" in out
        assert "est" in out and "actual" in out

    def test_analyze_out_writes_json_lines(self, files, tmp_path):
        spec, whois = files
        report = tmp_path / "analyze.jsonl"
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--query", self.QUERY,
             "--explain-analyze", "--analyze-out", str(report)]
        )
        assert status == 0, err
        lines = report.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            doc = json.loads(line)
            assert doc["version"] == 1
            assert doc["result_objects"] == 1
            assert doc["nodes"]

    def test_analyze_out_requires_explain_analyze(self, files, tmp_path):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY,
             "--analyze-out", str(tmp_path / "a.jsonl")]
        )
        assert status == 2
        assert "--analyze-out" in err

    def test_explain_conflicts_with_analyze(self, files):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--explain", "--explain-analyze"]
        )
        assert status == 2
        assert "--explain-analyze" in err


class TestStatisticsFlags:
    QUERY = "X :- X:<cs_person {<name 'Joe Chung'>}>@med"

    def test_stats_round_trip(self, files, tmp_path):
        spec, whois = files
        stats = tmp_path / "stats.json"
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--stats-out", str(stats)]
        )
        assert status == 0, err
        snapshot = json.loads(stats.read_text())
        assert snapshot["version"] == 1
        assert any(
            row["source"] == "whois" for row in snapshot["labels"]
        )
        status, out, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--stats-in", str(stats)]
        )
        assert status == 0, err
        assert "Joe Chung" in out

    def test_stats_in_missing_file_rejected(self, files, tmp_path):
        spec, whois = files
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY,
             "--stats-in", str(tmp_path / "missing.json")]
        )
        assert status == 2
        assert "cannot read" in err

    def test_stats_in_invalid_snapshot_rejected(self, files, tmp_path):
        spec, whois = files
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}')
        status, _, err = run(
            ["--spec", str(spec), "--source", f"whois={whois}",
             "--query", self.QUERY, "--stats-in", str(bad)]
        )
        assert status == 2
        assert "snapshot" in err

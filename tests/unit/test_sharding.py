"""Unit tests for the sharded source tier.

Covers the partition schemes and their deterministic routing, shard
pruning, the semi-join wire protocol (filters, Bloom digests, canonical
query text), the disk-backed SQLite store, registry resolution of
shard-qualified names, the engine's semi-join counters, and the
answer-cache behaviour with shard-qualified source names.
"""

import pytest

from repro.datasets import probe_keys, record_stream, route_records
from repro.exec import AnswerCache
from repro.external.registry import default_registry
from repro.mediator import Mediator
from repro.msl.parser import parse_query
from repro.oem import structural_key
from repro.oem.builders import atom, obj
from repro.wrappers import (
    BATCH_CAPABILITY,
    BloomFilter,
    HashPartition,
    OEMStoreWrapper,
    RangePartition,
    SemiJoinFilter,
    SemiJoinQuery,
    ShardedSource,
    SourceError,
    SourceRegistry,
    SQLiteOEMStoreWrapper,
    partition_forest,
    shard_name,
)
from repro.wrappers.sharding import encode_value

SPEC = (
    "<hit {<k K> <p P>}> :- <probe {<key K>}>@driver"
    " AND <rec {<key K> <payload P>}>@big"
)
QUERY = "H :- H:<hit {}>@med"


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def record(key, payload):
    return obj("rec", atom("key", key), atom("payload", payload))


def make_records(count):
    return [record(k, f"p{k}") for k in range(count)]


def make_sharded(records, shards, store=OEMStoreWrapper):
    partition = HashPartition("key", shards)
    forests = partition_forest(records, partition)
    wrappers = []
    for index, forest in enumerate(forests):
        if store is SQLiteOEMStoreWrapper:
            wrapper = SQLiteOEMStoreWrapper(shard_name("big", index))
            wrapper.add(*forest)
        else:
            wrapper = OEMStoreWrapper(
                shard_name("big", index),
                forest,
                capability=BATCH_CAPABILITY,
            )
        wrappers.append(wrapper)
    return ShardedSource("big", wrappers, partition)


def make_mediator(keys, records, shards=4, store=OEMStoreWrapper, **kwargs):
    registry = SourceRegistry()
    registry.register(
        OEMStoreWrapper(
            "driver", [obj("probe", atom("key", k)) for k in keys]
        )
    )
    if shards == 0:
        registry.register(
            OEMStoreWrapper("big", records, capability=BATCH_CAPABILITY)
        )
    else:
        registry.register(make_sharded(records, shards, store=store))
    return Mediator(
        "med", SPEC, registry, default_registry(), **kwargs
    )


# -- canonical value encoding -------------------------------------------------


class TestEncodeValue:
    def test_equal_numerics_encode_equal(self):
        assert encode_value(1) == encode_value(1.0)
        assert encode_value(0) == encode_value(0.0)
        assert encode_value(-3) == encode_value(-3.0)

    def test_bools_are_not_integers(self):
        assert encode_value(True) != encode_value(1)
        assert encode_value(False) != encode_value(0)

    def test_types_do_not_collide(self):
        values = [1, "1", b"1", True, None]
        encoded = {encode_value(v) for v in values}
        assert len(encoded) == len(values)

    def test_huge_int_distinct_from_neighbour(self):
        # 2**63 and 2**63 + 1 collapse to the same float; the encoding
        # must keep them apart (they are != as ints)
        assert encode_value(2**63 + 1) != encode_value(2**63)


# -- partition schemes --------------------------------------------------------


class TestPartitions:
    def test_hash_routing_is_stable_and_in_range(self):
        part = HashPartition("key", 5)
        again = HashPartition("key", 5)
        for value in [0, 1, "x", 3.5, b"raw", True, None]:
            routed = part.shard_of(value)
            assert routed is not None and 0 <= routed < 5
            assert routed == again.shard_of(value)

    def test_hash_equal_numerics_route_together(self):
        part = HashPartition("key", 7)
        assert part.shard_of(2) == part.shard_of(2.0)

    def test_hash_requires_a_shard(self):
        with pytest.raises(ValueError):
            HashPartition("key", 0)

    def test_range_routing(self):
        part = RangePartition("key", (10, 20))
        assert part.shards == 3
        assert part.shard_of(5) == 0
        assert part.shard_of(10) == 1  # boundaries are upper-exclusive
        assert part.shard_of(19) == 1
        assert part.shard_of(20) == 2

    def test_range_incomparable_broadcasts(self):
        part = RangePartition("key", (10, 20))
        assert part.shard_of("not-a-number") is None

    def test_range_boundaries_must_be_sorted(self):
        with pytest.raises(ValueError):
            RangePartition("key", (20, 10))

    def test_partition_forest_routes_and_preserves(self):
        records = make_records(50)
        part = HashPartition("key", 4)
        forests = partition_forest(records, part)
        assert sum(len(f) for f in forests) == 50
        for index, forest in enumerate(forests):
            for o in forest:
                key = next(c.value for c in o.children if c.label == "key")
                assert part.shard_of(key) == index

    def test_partition_forest_keyless_goes_to_shard_zero(self):
        orphan = obj("rec", atom("other", 1))
        forests = partition_forest([orphan], HashPartition("key", 3))
        assert forests[0] == [orphan]


# -- bloom filters ------------------------------------------------------------


class TestBloomFilter:
    def test_no_false_negatives(self):
        values = list(range(500)) + ["a", "b", 2.5]
        bloom = BloomFilter.build(values)
        for value in values:
            assert value in bloom

    def test_mostly_rejects_absent_values(self):
        bloom = BloomFilter.build(range(100))
        misses = sum(
            1 for v in range(10_000, 11_000) if v not in bloom
        )
        assert misses > 900  # ~12 bits/value keeps FP rate low

    def test_deterministic_digest(self):
        a = BloomFilter.build([1, 2, 3])
        b = BloomFilter.build([1, 2, 3])
        assert a.digest() == b.digest()
        assert a.digest() != BloomFilter.build([1, 2, 4]).digest()


# -- the semi-join wire protocol ----------------------------------------------


class TestSemiJoinProtocol:
    def test_filter_needs_exactly_one_payload(self):
        with pytest.raises(ValueError):
            SemiJoinFilter("K", "key")
        with pytest.raises(ValueError):
            SemiJoinFilter(
                "K",
                "key",
                values=frozenset([1]),
                bloom=BloomFilter.build([1]),
            )

    def test_admits_object_checks_direct_children(self):
        filt = SemiJoinFilter("K", "key", values=frozenset([1, 2]))
        assert filt.admits_object(record(1, "x"))
        assert not filt.admits_object(record(9, "x"))
        nested = obj("rec", obj("sub", atom("key", 1)))
        assert not filt.admits_object(nested)

    def test_canonical_text_is_order_insensitive(self):
        rule = parse_query("R :- R:<rec {<key K>}>@big")
        a = SemiJoinQuery(
            rule, [SemiJoinFilter("K", "key", values=frozenset([2, 1]))]
        )
        b = SemiJoinQuery(
            rule, [SemiJoinFilter("K", "key", values=frozenset([1, 2]))]
        )
        assert str(a) == str(b)
        assert str(a).startswith("SEMIJOIN[")
        assert SemiJoinQuery.is_semijoin

    def test_wrapper_answers_semijoin_only_with_capability(self):
        # the batch query is a full-variable projection rule: the
        # shipped filters restrict it, no template parameters remain
        rule = parse_query(
            "<bind_for_big {<bind_for_K K> <bind_for_P P>}> :-"
            " <rec {<key K> <payload P>}>@big"
        )
        query = SemiJoinQuery(
            rule, [SemiJoinFilter("K", "key", values=frozenset([1, 3]))]
        )
        batch = OEMStoreWrapper(
            "big", make_records(10), capability=BATCH_CAPABILITY
        )
        answer = batch.answer(query)
        keys = sorted(
            c.value
            for o in answer
            for c in o.children
            if c.label == "bind_for_P"
        )
        assert keys == ["p1", "p3"]
        plain = OEMStoreWrapper("big", make_records(10))
        with pytest.raises(SourceError):
            plain.answer(query)

    def test_bloom_filter_superset_is_allowed(self):
        # a bloom filter may admit extra objects; the wrapper returns
        # the superset and the mediator re-checks exactly
        rule = parse_query(
            "<bind_for_big {<bind_for_K K> <bind_for_P P>}> :-"
            " <rec {<key K> <payload P>}>@big"
        )
        query = SemiJoinQuery(
            rule,
            [SemiJoinFilter("K", "key", bloom=BloomFilter.build([1, 3]))],
        )
        batch = OEMStoreWrapper(
            "big", make_records(10), capability=BATCH_CAPABILITY
        )
        keys = {
            c.value
            for o in batch.answer(query)
            for c in o.children
            if c.label == "bind_for_P"
        }
        assert {"p1", "p3"} <= keys


# -- sharded sources ----------------------------------------------------------


class TestShardedSource:
    def test_shard_names_are_validated(self):
        part = HashPartition("key", 2)
        good = [
            OEMStoreWrapper(shard_name("big", i), []) for i in range(2)
        ]
        bad = [OEMStoreWrapper("big#0", []), OEMStoreWrapper("oops", [])]
        ShardedSource("big", good, part)
        with pytest.raises(SourceError):
            ShardedSource("big", bad, part)
        with pytest.raises(SourceError):
            ShardedSource("big", good[:1], part)

    def test_registry_resolves_shard_qualified_names(self):
        source = make_sharded(make_records(20), 4)
        registry = SourceRegistry()
        registry.register(source)
        assert registry.resolve("big") is source
        assert registry.resolve("big#2") is source.shard(2)
        assert "big#3" in registry
        assert "big#9" not in registry
        with pytest.raises(SourceError):
            source.shard(9)

    def test_prune_for_pattern(self):
        source = make_sharded(make_records(20), 4)
        part = source.partition
        pattern = parse_query(
            "R :- R:<rec {<key 7> <payload P>}>@big"
        ).tail[0].pattern
        names, pruned = source.prune_for_pattern(pattern)
        assert names == [shard_name("big", part.shard_of(7))]
        assert pruned == 3
        unbound = parse_query(
            "R :- R:<rec {<key K> <payload P>}>@big"
        ).tail[0].pattern
        names, pruned = source.prune_for_pattern(unbound)
        assert len(names) == 4 and pruned == 0

    def test_conflicting_constants_prune_everything(self):
        source = make_sharded(make_records(20), 4)
        part = source.partition
        # two different keys owned by different shards cannot both hold
        a, b = 0, next(
            k for k in range(1, 20)
            if part.shard_of(k) != part.shard_of(0)
        )
        pattern = parse_query(
            f"R :- R:<rec {{<key {a}> <key {b}>}}>@big"
        ).tail[0].pattern
        names, pruned = source.prune_for_pattern(pattern)
        assert names == [] and pruned == 4

    def test_logical_answer_equals_unsharded(self):
        records = make_records(30)
        sharded = make_sharded(records, 3)
        reference = OEMStoreWrapper("big", records)
        query = parse_query("R :- R:<rec {<key 7> <payload P>}>@big")
        assert canonical(sharded.answer(query)) == canonical(
            reference.answer(query)
        )
        assert canonical(sharded.export()) != []
        assert len(list(sharded.export())) == 30

    def test_describe_mentions_partition(self):
        source = make_sharded(make_records(4), 2)
        text = source.describe()
        assert "2 shard(s)" in text and "hash('key') % 2" in text


# -- the disk-backed store ----------------------------------------------------


class TestSQLiteStore:
    def test_round_trips_all_value_types(self):
        rich = obj(
            "rec",
            atom("key", 1),
            atom("s", "text"),
            atom("f", 2.5),
            atom("b", True),
            atom("raw", b"\x00\xff"),
            atom("n", None),
            obj("nested", atom("inner", "deep")),
        )
        store = SQLiteOEMStoreWrapper("big")
        store.add(rich)
        assert canonical(store.export()) == canonical([rich])
        store.close()

    def test_matches_in_memory_wrapper(self):
        records = make_records(40)
        disk = SQLiteOEMStoreWrapper("big")
        disk.add(*records)
        memory = OEMStoreWrapper(
            "big", records, capability=BATCH_CAPABILITY
        )
        for text in (
            "R :- R:<rec {<key 7> <payload P>}>@big",
            "R :- R:<rec {<payload 'p3'>}>@big",
            "R :- R:<rec {}>@big",
        ):
            query = parse_query(text)
            assert canonical(disk.answer(query)) == canonical(
                memory.answer(query)
            ), text
        rule = parse_query(
            "<bind_for_big {<bind_for_K K> <bind_for_P P>}> :-"
            " <rec {<key K> <payload P>}>@big"
        )
        for filt in (
            SemiJoinFilter("K", "key", values=frozenset([1, 5, 9])),
            SemiJoinFilter("K", "key", bloom=BloomFilter.build([1, 5])),
        ):
            semi = SemiJoinQuery(rule, [filt])
            assert canonical(disk.answer(semi)) == canonical(
                memory.answer(semi)
            )
        assert len(disk) == 40
        disk.close()

    def test_load_records_streams(self):
        store = SQLiteOEMStoreWrapper("big")
        store.load_records(
            "rec", ([("key", k), ("payload", f"p{k}")] for k in range(25))
        )
        assert len(store) == 25
        query = parse_query("R :- R:<rec {<key 7> <payload P>}>@big")
        assert len(store.answer(query)) == 1
        store.close()

    def test_generator_routing_matches_partition(self):
        part = HashPartition("key", 4)
        stores = [
            SQLiteOEMStoreWrapper(shard_name("big", i)) for i in range(4)
        ]
        for index, batch in route_records(
            record_stream(200), part, 4, chunk=32
        ):
            stores[index].load_records("rec", batch)
        assert sum(len(s) for s in stores) == 200
        for index, store in enumerate(stores):
            for o in store.export():
                key = next(
                    c.value for c in o.children if c.label == "key"
                )
                assert part.shard_of(key) == index
            store.close()

    def test_probe_keys_is_deterministic(self):
        assert probe_keys(20, 100, seed=5) == probe_keys(20, 100, seed=5)
        assert probe_keys(20, 100, seed=5) != probe_keys(20, 100, seed=6)


# -- end-to-end through the mediator ------------------------------------------


class TestMediatorIntegration:
    def test_semijoin_collapses_probes(self):
        keys = [1, 3, 5, 7, 9, 3, 5]  # duplicates exercise dedup
        records = make_records(50)
        reference = make_mediator(keys, records, shards=0, semijoin=False)
        expected = canonical(reference.query(QUERY).objects())
        med = make_mediator(keys, records, shards=4, parallelism=4)
        got = canonical(med.query(QUERY).objects())
        assert got == expected
        context = med.last_context
        assert context.semijoin_batches <= 4
        assert context.semijoin_probes == 5  # deduped
        assert context.semijoin_probes_saved >= 1
        assert context.shards_scanned >= 0
        med.close()
        reference.close()

    def test_sqlite_shards_match_reference(self):
        keys = [2, 4, 6, 8]
        records = make_records(30)
        reference = make_mediator(keys, records, shards=0, semijoin=False)
        expected = canonical(reference.query(QUERY).objects())
        med = make_mediator(
            keys, records, shards=3, store=SQLiteOEMStoreWrapper
        )
        assert canonical(med.query(QUERY).objects()) == expected
        med.close()
        reference.close()

    def test_bloom_path_matches_exact(self):
        keys = probe_keys(40, 60, seed=1)
        records = make_records(60)
        exact = make_mediator(keys, records, shards=2, bloom_threshold=0)
        bloomed = make_mediator(keys, records, shards=2, bloom_threshold=1)
        assert canonical(bloomed.query(QUERY).objects()) == canonical(
            exact.query(QUERY).objects()
        )
        exact.close()
        bloomed.close()

    def test_semijoin_off_still_correct(self):
        keys = [1, 2, 3]
        records = make_records(20)
        med = make_mediator(keys, records, shards=2, semijoin=False)
        reference = make_mediator(keys, records, shards=0, semijoin=False)
        assert canonical(med.query(QUERY).objects()) == canonical(
            reference.query(QUERY).objects()
        )
        assert med.last_context.semijoin_batches == 0
        med.close()
        reference.close()

    def test_explain_shows_sharding(self):
        med = make_mediator([1], make_records(10), shards=4)
        text = med.explain(QUERY)
        assert "-- sharding --" in text
        assert "semijoin: on" in text
        assert "4 shard(s)" in text
        assert "semijoin x4 shards" in text
        med.close()

    def test_bloom_threshold_validated(self):
        with pytest.raises(Exception):
            make_mediator([1], make_records(5), shards=2, bloom_threshold=-1)

    def test_telemetry_counters(self):
        med = make_mediator(
            [1, 3, 5], make_records(30), shards=4, telemetry=True
        )
        med.query(QUERY)
        assert med.telemetry.semijoin_batches_total.value() >= 1
        assert med.telemetry.semijoin_probes_saved_total.value() >= 0
        med.close()

    @pytest.mark.parametrize("parallelism", [1, 8])
    def test_telemetry_counters_match_context_exactly(self, parallelism):
        # the Prometheus series are flushed from the per-query
        # ExecutionContext: on a fresh mediator, one sharded query must
        # leave them exactly equal to the context counters — no drops,
        # no double counting — at any parallelism
        med = make_mediator(
            [1, 3, 5, 7, 9],
            make_records(40),
            shards=4,
            telemetry=True,
            parallelism=parallelism,
        )
        med.query(QUERY)
        context = med.last_context
        assert context.semijoin_batches >= 1  # non-vacuous
        assert (
            med.telemetry.semijoin_batches_total.value()
            == context.semijoin_batches
        )
        assert (
            med.telemetry.semijoin_probes_saved_total.value()
            == context.semijoin_probes_saved
        )
        assert (
            med.telemetry.shards_pruned_total.value()
            == context.shards_pruned
        )
        med.close()


# -- answer-cache keys with shard-qualified names -----------------------------


class TestShardedAnswerCache:
    def test_no_cross_shard_hits(self):
        cache = AnswerCache(max_entries=16)
        answer = [record(1, "x")]
        cache.store("big#0", "Q", answer)
        hit, got = cache.lookup("big#0", "Q")
        assert hit and canonical(got) == canonical(answer)
        hit, got = cache.lookup("big#1", "Q")
        assert not hit and got is None
        hit, got = cache.lookup("big", "Q")
        assert not hit

    def test_invalidation_hits_only_the_named_shard(self):
        cache = AnswerCache(max_entries=16)
        for index in range(3):
            cache.store(f"big#{index}", "Q", [])
        assert cache.invalidate("big#1") == 1
        assert cache.lookup("big#0", "Q")[0]
        assert not cache.lookup("big#1", "Q")[0]
        assert cache.lookup("big#2", "Q")[0]

    def test_mediator_caches_per_shard(self):
        cache = AnswerCache(max_entries=64)
        med = make_mediator(
            [1, 3, 5], make_records(30), shards=4, cache=cache
        )
        first = canonical(med.query(QUERY).objects())
        assert canonical(med.query(QUERY).objects()) == first
        assert cache.hits > 0
        for source in cache.hits_by_source:
            # every cached source call is shard-qualified or the driver:
            # the logical name never appears as a cache key
            assert source == "driver" or "#" in source
        med.close()

"""Unit tests for the MSL lexer and parser."""

import pytest

from repro.msl import (
    Comparison,
    Const,
    ExternalCall,
    MSLSyntaxError,
    Param,
    Pattern,
    PatternCondition,
    PatternItem,
    SemOidTerm,
    SetPattern,
    Var,
    VarItem,
    is_variable_name,
    parse_pattern,
    parse_query,
    parse_rule,
    parse_specification,
    tokenize,
)


class TestLexer:
    def test_kinds(self):
        kinds = [t.kind for t in tokenize("<name N> :- 'x' 3 &id $p")]
        assert kinds == [
            "punct", "word", "word", "punct", "punct",
            "string", "number", "oid", "param",
        ]

    def test_multi_char_operators(self):
        texts = [t.text for t in tokenize(":- .. != <= >=")]
        assert texts == [":-", "..", "!=", "<=", ">="]

    def test_comments_stripped(self):
        assert [t.text for t in tokenize("a // comment\nb # more")] == ["a", "b"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1 and tokens[1].line == 2

    def test_string_escapes(self):
        (tok,) = tokenize(r"'it\'s'")
        assert tok.value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(MSLSyntaxError):
            tokenize("'oops")

    def test_newline_in_string(self):
        with pytest.raises(MSLSyntaxError):
            tokenize("'a\nb'")

    def test_negative_and_real_numbers(self):
        values = [t.value for t in tokenize("-3 2.5")]
        assert values == [-3, 2.5]

    def test_bare_dollar_rejected(self):
        with pytest.raises(MSLSyntaxError):
            tokenize("$ x")


class TestVariableNaming:
    def test_capitalised_is_variable(self):
        assert is_variable_name("Rest1")
        assert is_variable_name("N")
        assert is_variable_name("_")

    def test_lowercase_is_constant(self):
        assert not is_variable_name("name")


class TestPatternParsing:
    def test_two_fields(self):
        p = parse_pattern("<name N>")
        assert p.label == Const("name")
        assert p.value == Var("N")
        assert p.oid is None and p.type is None

    def test_one_field_label_only(self):
        p = parse_pattern("<birthday>")
        assert p.value == Var("_")

    def test_three_fields_oid_label_value(self):
        p = parse_pattern("<&1 name 'Joe'>")
        assert p.oid == Const("&1")
        assert p.value == Const("Joe")

    def test_four_fields(self):
        p = parse_pattern("<&1 name string 'Joe'>")
        assert p.type == Const("string")

    def test_variable_label(self):
        p = parse_pattern("<R {<first_name FN>}>")
        assert p.label == Var("R")

    def test_set_pattern_with_rest(self):
        p = parse_pattern("<person {<name N> | Rest1}>")
        sp = p.value
        assert isinstance(sp, SetPattern)
        assert len(sp.items) == 1
        assert sp.rest.var == Var("Rest1")

    def test_rest_with_conditions(self):
        p = parse_pattern("<person {| Rest1:{<year 3>}}>")
        rest = p.value.rest
        assert rest.var == Var("Rest1")
        assert len(rest.conditions) == 1
        assert rest.conditions[0].label == Const("year")

    def test_bare_variable_item(self):
        p = parse_pattern("<cs_person {<name N> Rest1 Rest2}>")
        items = p.value.items
        assert isinstance(items[1], VarItem)
        assert items[1].var == Var("Rest1")

    def test_descendant_item(self):
        p = parse_pattern("<person {.. <year 3>}>")
        item = p.value.items[0]
        assert isinstance(item, PatternItem) and item.descendant

    def test_semantic_oid_in_head(self):
        p = parse_pattern("<&pub(T, Y) publication {<title T>}>")
        assert isinstance(p.oid, SemOidTerm)
        assert p.oid.functor == "pub"
        assert p.oid.args == (Var("T"), Var("Y"))

    def test_param_in_label(self):
        p = parse_pattern("<$R {<first_name $FN>}>")
        assert p.label == Param("R")
        assert p.value.items[0].pattern.value == Param("FN")

    def test_nested_object_variable(self):
        p = parse_pattern("<person {X:<name N>}>")
        assert p.value.items[0].pattern.object_var == Var("X")

    def test_anonymous_value(self):
        p = parse_pattern("<name _>")
        assert p.value == Var("_")

    def test_trailing_input_rejected(self):
        with pytest.raises(MSLSyntaxError, match="trailing"):
            parse_pattern("<a 1> junk")

    def test_too_many_fields(self):
        with pytest.raises(MSLSyntaxError):
            parse_pattern("<&1 a string 'x' extra>")


class TestRuleParsing:
    def test_simple_rule(self):
        rule = parse_rule("<a X> :- <b X>@s")
        assert len(rule.head) == 1
        (cond,) = rule.tail
        assert isinstance(cond, PatternCondition)
        assert cond.source == "s"

    def test_and_and_comma_separators(self):
        r1 = parse_rule("<a X> :- <b X>@s AND <c X>@t")
        r2 = parse_rule("<a X> :- <b X>@s, <c X>@t")
        assert len(r1.tail) == len(r2.tail) == 2

    def test_and_case_insensitive(self):
        rule = parse_rule("<a X> :- <b X>@s and <c X>@t")
        assert len(rule.tail) == 2

    def test_object_variable_query(self):
        query = parse_query("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
        assert query.head == (Var("JC"),)
        pattern = query.tail[0].pattern
        assert pattern.object_var == Var("JC")

    def test_external_call(self):
        rule = parse_rule("<a N> :- <b N>@s AND decomp(N, LN, FN)")
        call = rule.tail[1]
        assert isinstance(call, ExternalCall)
        assert call.name == "decomp"
        assert call.args == (Var("N"), Var("LN"), Var("FN"))

    def test_comparisons(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            rule = parse_rule(f"<a X> :- <b X>@s AND X {op} 3")
            cmp_ = rule.tail[1]
            assert isinstance(cmp_, Comparison)
            assert cmp_.op == op

    def test_multi_pattern_head(self):
        rule = parse_rule("<a X> <b X> :- <c X>@s")
        assert len(rule.head) == 2

    def test_empty_head_rejected(self):
        with pytest.raises(MSLSyntaxError):
            parse_rule(":- <a X>@s")

    def test_missing_tail_rejected(self):
        with pytest.raises(MSLSyntaxError):
            parse_rule("<a X> :-")


class TestSpecificationParsing:
    def test_rules_and_declarations(self):
        spec = parse_specification(
            "<a X> :- <b X>@s ;"
            "EXT decomp(bound, free, free) BY name_to_lnfn ;"
            "EXT decomp(free, bound, bound) BY lnfn_to_name"
        )
        assert len(spec.rules) == 1
        assert len(spec.externals) == 2
        assert spec.externals[0].adornment == ("b", "f", "f")

    def test_declarations_for(self):
        spec = parse_specification(
            "<a X> :- <b X>@s ; EXT f(bound, free) BY g"
        )
        assert len(spec.declarations_for("f")) == 1
        assert spec.declarations_for("missing") == ()

    def test_short_adornment_words(self):
        spec = parse_specification("<a X> :- <b X>@s ; EXT f(b, f) BY g")
        assert spec.externals[0].adornment == ("b", "f")

    def test_bad_adornment_word(self):
        with pytest.raises(MSLSyntaxError):
            parse_specification("EXT f(sideways) BY g")

    def test_multiple_rules(self):
        spec = parse_specification("<a X> :- <b X>@s ; <c Y> :- <d Y>@t")
        assert len(spec.rules) == 2

    def test_multiple_rules_without_semicolons(self):
        spec = parse_specification("<a X> :- <b X>@s <c Y> :- <d Y>@t")
        assert len(spec.rules) == 2

    def test_parse_rule_rejects_multiple(self):
        with pytest.raises(MSLSyntaxError, match="exactly one"):
            parse_rule("<a X> :- <b X>@s ; <c Y> :- <d Y>@t")


class TestRoundTrip:
    CASES = [
        "<a X> :- <b X>@s",
        "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med",
        "<cs_person {<name N> <rel R> Rest1 Rest2}> :- "
        "<person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois"
        " AND decomp(N, LN, FN)"
        " AND <R {<first_name FN> <last_name LN> | Rest2}>@cs",
        "<a X> :- <b {| R:{<year 3>}}>@s AND X > 2",
        "<p {.. <deep D>}> :- <q {.. <deep D>}>@s",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_unparse_parse_fixpoint(self, text):
        rule = parse_rule(text)
        again = parse_rule(str(rule))
        assert str(again) == str(rule)

"""Unit tests for the parallel execution layer (repro.exec).

Covers the :class:`AnswerCache` (LRU + TTL + invalidation), the
:class:`SourceDispatcher` (batch scheduling, single-flight dedup, task
scopes), and the mediator-level integration: ``parallelism=N`` and
``cache=`` knobs, staged plan execution, and the determinism contract
(parallel results equal sequential results).
"""

import threading

import pytest

from repro.exec import AnswerCache, SourceDispatcher, TaskScope, current_scope, scope_active
from repro.exec.dispatcher import TaskOutcome
from repro.governor.budget import CancellationToken, QueryCancelled
from repro.mediator import Mediator, MediatorError
from repro.oem import parse_oem
from repro.oem.compare import structural_key
from repro.reliability import ManualClock
from repro.wrappers import OEMStoreWrapper, SourceRegistry


def make_objects(label="a"):
    return parse_oem(f"<&{label}1, rec, set, {{&{label}2}}>"
                     f" <&{label}2, name, string, '{label}'> ;")


def canonical(objects):
    return sorted(repr(structural_key(obj)) for obj in objects)


class TestAnswerCache:
    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            AnswerCache(max_entries=0)
        with pytest.raises(ValueError):
            AnswerCache(ttl=0.0)

    def test_store_then_lookup(self):
        cache = AnswerCache()
        answer = make_objects()
        cache.store("src", "q1", answer)
        hit, value = cache.lookup("src", "q1")
        assert hit and value == answer
        assert ("src", "q1") in cache
        assert len(cache) == 1

    def test_lookup_returns_a_fresh_copy(self):
        cache = AnswerCache()
        cache.store("src", "q1", make_objects())
        _, first = cache.lookup("src", "q1")
        first.clear()
        _, second = cache.lookup("src", "q1")
        assert len(second) == 1

    def test_miss_is_counted(self):
        cache = AnswerCache()
        hit, value = cache.lookup("src", "nope")
        assert not hit and value is None
        assert cache.misses == 1 and cache.hits == 0
        assert cache.hit_rate == 0.0

    def test_lru_eviction_prefers_stale_entries(self):
        cache = AnswerCache(max_entries=2)
        cache.store("src", "a", [])
        cache.store("src", "b", [])
        cache.lookup("src", "a")  # refresh a: b is now least recent
        cache.store("src", "c", [])
        assert ("src", "a") in cache
        assert ("src", "b") not in cache
        assert ("src", "c") in cache
        assert cache.evictions == 1

    def test_ttl_expires_on_the_injected_clock(self):
        clock = ManualClock()
        cache = AnswerCache(ttl=10.0, clock=clock)
        cache.store("src", "q1", make_objects())
        clock.advance(9.0)
        assert cache.lookup("src", "q1")[0]
        clock.advance(2.0)
        hit, _ = cache.lookup("src", "q1")
        assert not hit
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_invalidate_is_per_source(self):
        cache = AnswerCache()
        cache.store("whois", "q1", [])
        cache.store("whois", "q2", [])
        cache.store("cs", "q1", [])
        assert cache.invalidate("whois") == 2
        assert len(cache) == 1
        assert ("cs", "q1") in cache
        assert cache.invalidations == 2

    def test_clear_drops_everything_but_keeps_counters(self):
        cache = AnswerCache()
        cache.store("src", "q1", [])
        cache.lookup("src", "q1")
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.hits == 1

    def test_stats_and_describe(self):
        cache = AnswerCache(max_entries=8, ttl=5.0, clock=ManualClock())
        cache.store("src", "q1", [])
        cache.lookup("src", "q1")
        cache.lookup("src", "q2")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["hits_by_source"] == {"src": 1}
        assert "hit rate 0.50" in cache.describe()


class TestTaskScope:
    def test_no_scope_by_default(self):
        assert current_scope() is None

    def test_scope_active_installs_and_restores(self):
        scope = TaskScope()
        with scope_active(scope):
            assert current_scope() is scope
        assert current_scope() is None

    def test_merge_accumulates(self):
        parent, child = TaskScope(), TaskScope()
        child.attempts, child.latency = 3, 1.5
        child.warnings.append("w")
        parent.merge(child)
        assert parent.attempts == 3
        assert parent.latency == 1.5
        assert parent.warnings == ["w"]


class TestSourceDispatcher:
    def test_validates_parallelism(self):
        with pytest.raises(ValueError):
            SourceDispatcher(parallelism=0)
        with pytest.raises(ValueError):
            SourceDispatcher(parallelism=2.5)

    def test_sequential_dispatcher_is_inactive_without_cache(self):
        dispatcher = SourceDispatcher()
        assert not dispatcher.parallel
        assert not dispatcher.active
        assert SourceDispatcher(cache=AnswerCache()).active
        assert SourceDispatcher(parallelism=2).active

    def test_sequential_batch_runs_inline_in_order(self):
        dispatcher = SourceDispatcher(parallelism=1)
        seen = []
        outcomes = dispatcher.run_tasks(
            [lambda i=i: (seen.append(i), threading.current_thread())[1]
             for i in range(4)]
        )
        assert seen == [0, 1, 2, 3]
        assert all(
            outcome.value is threading.main_thread()
            for outcome in outcomes
        )

    def test_parallel_batch_keeps_submission_order(self):
        dispatcher = SourceDispatcher(parallelism=4)
        try:
            outcomes = dispatcher.run_tasks(
                [lambda i=i: i * 10 for i in range(8)]
            )
            assert [o.value for o in outcomes] == [i * 10 for i in range(8)]
        finally:
            dispatcher.shutdown()

    def test_parallel_batch_really_overlaps(self):
        dispatcher = SourceDispatcher(parallelism=2)
        barrier = threading.Barrier(2, timeout=10)
        try:
            outcomes = dispatcher.run_tasks([barrier.wait, barrier.wait])
            assert all(o.error is None for o in outcomes)
        finally:
            dispatcher.shutdown()

    def test_task_errors_are_captured_not_raised(self):
        dispatcher = SourceDispatcher(parallelism=2)

        def boom():
            raise RuntimeError("task failed")

        try:
            outcomes = dispatcher.run_tasks([boom, lambda: "ok"])
            assert isinstance(outcomes[0].error, RuntimeError)
            assert outcomes[1].value == "ok"
        finally:
            dispatcher.shutdown()

    def test_each_task_gets_its_own_scope(self):
        dispatcher = SourceDispatcher(parallelism=4)

        def record(n):
            scope = current_scope()
            scope.attempts += n
            return n

        try:
            outcomes = dispatcher.run_tasks(
                [lambda n=n: record(n) for n in (1, 2, 3)]
            )
            assert [o.scope.attempts for o in outcomes] == [1, 2, 3]
        finally:
            dispatcher.shutdown()

    def test_fetch_consults_the_cache_first(self):
        cache = AnswerCache()
        answer = make_objects()
        cache.store("src", "q", answer)
        dispatcher = SourceDispatcher(cache=cache)

        def ship():
            raise AssertionError("a cache hit must not ship")

        assert dispatcher.fetch("src", "q", ship) == answer

    def test_fetch_stores_cacheable_answers_only(self):
        cache = AnswerCache()
        dispatcher = SourceDispatcher(cache=cache)
        answer = make_objects()
        assert dispatcher.fetch("src", "good", lambda: (answer, True)) == answer
        assert dispatcher.fetch("src", "degraded", lambda: ([], False)) == []
        assert ("src", "good") in cache
        assert ("src", "degraded") not in cache

    def test_single_flight_shares_one_wire_call(self):
        dispatcher = SourceDispatcher(parallelism=4)
        release = threading.Event()
        calls = []
        answer = make_objects()

        def ship():
            calls.append(threading.current_thread().name)
            assert release.wait(timeout=10)
            return answer, True

        results = []

        def fetch():
            results.append(dispatcher.fetch("src", "q", ship))

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        try:
            for thread in threads:
                thread.start()
            # wait until the leader is in ship() and followers piled up
            deadline = threading.Event()
            for _ in range(100):
                if calls and dispatcher.shared >= 3:
                    break
                deadline.wait(0.05)
            release.set()
            for thread in threads:
                thread.join(timeout=10)
            assert len(calls) == 1, "exactly one caller ships"
            assert len(results) == 4
            assert all(result == answer for result in results)
            assert dispatcher.shared == 3
            assert dispatcher.dispatched == 1
        finally:
            release.set()
            dispatcher.shutdown()

    def test_single_flight_shares_the_leaders_error(self):
        dispatcher = SourceDispatcher(parallelism=4)
        release = threading.Event()

        def ship():
            assert release.wait(timeout=10)
            raise RuntimeError("wire down")

        errors = []

        def fetch():
            try:
                dispatcher.fetch("src", "q", ship)
            except RuntimeError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=fetch) for _ in range(3)]
        try:
            for thread in threads:
                thread.start()
            for _ in range(100):
                if dispatcher.shared >= 2:
                    break
                release.wait(0.05)
            release.set()
            for thread in threads:
                thread.join(timeout=10)
            assert len(errors) == 3
        finally:
            release.set()
            dispatcher.shutdown()

    def test_shutdown_is_idempotent_and_restartable(self):
        dispatcher = SourceDispatcher(parallelism=2)
        dispatcher.run_tasks([lambda: 1, lambda: 2])
        dispatcher.shutdown()
        dispatcher.shutdown()
        outcomes = dispatcher.run_tasks([lambda: 3, lambda: 4])
        assert [o.value for o in outcomes] == [3, 4]
        dispatcher.shutdown()

    def test_stats_and_describe(self):
        dispatcher = SourceDispatcher(
            parallelism=3, cache=AnswerCache(max_entries=4)
        )
        stats = dispatcher.stats()
        assert stats["parallelism"] == 3
        assert "cache" in stats
        assert "parallelism: 3" in dispatcher.describe()
        assert "answer cache" in dispatcher.describe()
        assert "SourceDispatcher" in repr(dispatcher)


TWO_SOURCE_SPEC = """
<a X> :- <rec {<name X>}>@s1 ;
<a X> :- <rec {<name X>}>@s2 ;
"""


class _BlockingWrapper(OEMStoreWrapper):
    """Blocks every answer on a shared barrier — proves overlap."""

    def __init__(self, name, objects, barrier):
        super().__init__(name, objects)
        self._barrier = barrier

    def answer(self, query):
        self._barrier.wait()
        return super().answer(query)


class TestParallelMediator:
    def _registry(self):
        return SourceRegistry(
            OEMStoreWrapper("s1", make_objects("a")),
            OEMStoreWrapper("s2", make_objects("b")),
        )

    def test_rejects_bad_parallelism(self):
        with pytest.raises(MediatorError):
            Mediator("m", TWO_SOURCE_SPEC, self._registry(), parallelism=0)

    def test_parallel_answers_match_sequential(self):
        sequential = Mediator("m", TWO_SOURCE_SPEC, self._registry())
        parallel = Mediator(
            "m", TWO_SOURCE_SPEC, self._registry(), parallelism=4
        )
        query = "X :- X:<a V>@m"
        assert canonical(parallel.answer(query)) == canonical(
            sequential.answer(query)
        )

    def test_union_leaves_run_concurrently(self):
        # both leaf query nodes must be in flight at once or the
        # barrier times out and the query fails
        barrier = threading.Barrier(2, timeout=10)
        registry = SourceRegistry(
            _BlockingWrapper("s1", make_objects("a"), barrier),
            _BlockingWrapper("s2", make_objects("b"), barrier),
        )
        mediator = Mediator("m", TWO_SOURCE_SPEC, registry, parallelism=2)
        assert len(mediator.answer("X :- X:<a V>@m")) == 2

    def test_parallel_trace_covers_the_whole_plan(self):
        sequential = Mediator(
            "m", TWO_SOURCE_SPEC, self._registry(), trace=True
        )
        parallel = Mediator(
            "m", TWO_SOURCE_SPEC, self._registry(), trace=True,
            parallelism=4,
        )
        query = "X :- X:<a V>@m"
        sequential.answer(query)
        parallel.answer(query)
        seq_nodes = [e.node.describe() for e in sequential.last_context.trace]
        par_nodes = [e.node.describe() for e in parallel.last_context.trace]
        assert par_nodes == seq_nodes

    def test_parallel_counters_match_sequential(self):
        sequential = Mediator("m", TWO_SOURCE_SPEC, self._registry())
        parallel = Mediator(
            "m", TWO_SOURCE_SPEC, self._registry(), parallelism=4
        )
        query = "X :- X:<a V>@m"
        sequential.answer(query)
        parallel.answer(query)
        assert (
            parallel.last_context.queries_sent
            == sequential.last_context.queries_sent
        )
        assert (
            parallel.last_context.objects_received
            == sequential.last_context.objects_received
        )

    def test_cache_serves_repeats_without_new_source_calls(self):
        registry = self._registry()
        mediator = Mediator(
            "m", TWO_SOURCE_SPEC, registry,
            cache=AnswerCache(max_entries=16),
        )
        query = "X :- X:<a V>@m"
        first = mediator.answer(query)
        sent_before = dict(registry.stats_snapshot())
        second = mediator.answer(query)
        assert canonical(second) == canonical(first)
        assert registry.stats_snapshot() == sent_before
        assert mediator.cache.hits >= 2

    def test_cache_invalidation_refetches(self):
        registry = self._registry()
        cache = AnswerCache(max_entries=16)
        mediator = Mediator("m", TWO_SOURCE_SPEC, registry, cache=cache)
        query = "X :- X:<a V>@m"
        mediator.answer(query)
        assert cache.invalidate("s1") >= 1
        mediator.answer(query)
        assert registry.stats_snapshot()["s1"]["queries_answered"] == 2
        assert registry.stats_snapshot()["s2"]["queries_answered"] == 1

    def test_explain_reports_execution_section_when_active(self):
        query = "X :- X:<a V>@m"
        plain = Mediator("m", TWO_SOURCE_SPEC, self._registry())
        assert "-- execution --" not in plain.explain(query)
        parallel = Mediator(
            "m", TWO_SOURCE_SPEC, self._registry(), parallelism=4,
            cache=AnswerCache(),
        )
        text = parallel.explain(query)
        assert "-- execution --" in text
        assert "parallelism: 4" in text
        assert "answer cache" in text

    def test_health_snapshot_reports_execution_stats(self):
        mediator = Mediator(
            "m", TWO_SOURCE_SPEC, self._registry(), parallelism=4
        )
        mediator.answer("X :- X:<a V>@m")
        execution = mediator.health_snapshot()["execution"]
        assert execution["parallelism"] == 4

    def test_cancellation_is_observed_under_parallelism(self):
        token = CancellationToken()
        mediator = Mediator(
            "m", TWO_SOURCE_SPEC, self._registry(), parallelism=4,
            cancellation=token,
        )
        token.cancel("operator abort")
        with pytest.raises(QueryCancelled):
            mediator.answer("X :- X:<a V>@m")

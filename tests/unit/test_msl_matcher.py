"""Unit tests for pattern matching against OEM structures."""

import pytest

from repro.msl import (
    EMPTY_BINDINGS,
    MSLMatchError,
    match_against_forest,
    match_all,
    match_pattern,
    parse_pattern,
)
from repro.oem import atom, obj, parse_oem, parse_one


def bindings_of(pattern_text, obj_):
    return [
        dict(b.items())
        for b in match_pattern(parse_pattern(pattern_text), obj_)
    ]


class TestSlotMatching:
    def test_constant_value_match(self):
        o = parse_one("<&1, name, string, 'Fred'>")
        assert bindings_of("<name 'Fred'>", o) == [{}]
        assert bindings_of("<name 'Tom'>", o) == []

    def test_variable_binds_value(self):
        o = parse_one("<&1, name, string, 'Fred'>")
        assert bindings_of("<name N>", o) == [{"N": "Fred"}]

    def test_variable_label(self):
        o = parse_one("<&1, name, string, 'Fred'>")
        assert bindings_of("<L 'Fred'>", o) == [{"L": "name"}]

    def test_label_mismatch(self):
        o = parse_one("<&1, name, string, 'Fred'>")
        assert bindings_of("<dept D>", o) == []

    def test_type_slot(self):
        o = parse_one("<&1, year, integer, 3>")
        assert bindings_of("<&1 year integer 3>", o) == [{}]
        assert bindings_of("<&1 year string Y>", o) == []

    def test_oid_constant(self):
        o = parse_one("<&1, year, integer, 3>")
        assert bindings_of("<&1 year Y>", o) == [{"Y": 3}]
        assert bindings_of("<&2 year Y>", o) == []

    def test_oid_variable_binds_oid(self):
        o = parse_one("<&1, year, integer, 3>")
        (env,) = match_pattern(parse_pattern("<I year _>"), o)
        assert env["I"].text == "&1"

    def test_anonymous_binds_nothing(self):
        o = parse_one("<&1, name, string, 'Fred'>")
        assert bindings_of("<name _>", o) == [{}]

    def test_object_variable_binds_object(self):
        o = parse_one("<&1, name, string, 'Fred'>")
        (env,) = match_pattern(parse_pattern("X:<name _>"), o)
        assert env["X"] is o

    def test_set_valued_variable_binds_children(self):
        o = parse_one("<&p, person, set, {<&n, name, string, 'F'>}>")
        (env,) = match_pattern(parse_pattern("<person V>"), o)
        assert env["V"] == o.children

    def test_constant_never_matches_set_object(self):
        o = parse_one("<&p, person, set, {}>")
        assert bindings_of("<person 'x'>", o) == []

    def test_set_pattern_never_matches_atom(self):
        o = parse_one("<&1, name, string, 'Fred'>")
        assert bindings_of("<name {}>", o) == []

    def test_numeric_equality_int_vs_float(self):
        o = parse_one("<&1, ratio, real, 3.0>")
        assert bindings_of("<ratio 3>", o) == [{}]

    def test_bool_not_equal_to_int(self):
        o = parse_one("<&1, flag, boolean, true>")
        assert bindings_of("<flag 1>", o) == []


class TestSetMatching:
    @pytest.fixture
    def joe(self):
        return parse_one(
            """
            <&p1, person, set, {&n1,&d1,&rel1,&elm1}>
              <&n1, name, string, 'Joe Chung'>
              <&d1, dept, string, 'CS'>
              <&rel1, relation, string, 'employee'>
              <&elm1, e_mail, string, 'chung@cs'>
            """
        )

    def test_containment_semantics(self, joe):
        # extra children are fine without a Rest
        assert bindings_of("<person {<name N>}>", joe) == [
            {"N": "Joe Chung"}
        ]

    def test_paper_binding_b_w_1(self, joe):
        (env,) = match_pattern(
            parse_pattern(
                "<person {<name N> <dept 'CS'> <relation R> | Rest1}>"
            ),
            joe,
        )
        assert env["N"] == "Joe Chung"
        assert env["R"] == "employee"
        rest = env["Rest1"]
        assert [o.label for o in rest] == ["e_mail"]

    def test_rest_binds_empty_when_all_consumed(self, joe):
        (env,) = match_pattern(
            parse_pattern(
                "<person {<name _> <dept _> <relation _> <e_mail _> | R}>"
            ),
            joe,
        )
        assert env["R"] == ()

    def test_missing_required_item_fails(self, joe):
        assert bindings_of("<person {<year Y>}>", joe) == []

    def test_items_match_distinct_children(self):
        o = obj("p", atom("tag", "a"))
        # two items cannot both consume the single 'tag' child
        assert bindings_of("<p {<tag X> <tag Y>}>", o) == []

    def test_items_enumerate_permutations(self):
        o = obj("p", atom("tag", "a"), atom("tag", "b"))
        results = bindings_of("<p {<tag X> <tag Y>}>", o)
        assert {(r["X"], r["Y"]) for r in results} == {
            ("a", "b"), ("b", "a"),
        }

    def test_join_variable_within_pattern(self):
        o = obj("p", atom("a", "v"), atom("b", "v"))
        assert bindings_of("<p {<a X> <b X>}>", o) == [{"X": "v"}]
        o2 = obj("p", atom("a", "v"), atom("b", "w"))
        assert bindings_of("<p {<a X> <b X>}>", o2) == []

    def test_rest_conditions_filter_without_consuming(self):
        o = obj("p", atom("name", "n"), atom("year", 3))
        (env,) = match_pattern(
            parse_pattern("<p {<name N> | R:{<year 3>}}>"), o
        )
        assert [c.label for c in env["R"]] == ["year"]

    def test_rest_conditions_fail(self):
        o = obj("p", atom("name", "n"), atom("year", 2))
        assert bindings_of("<p {<name N> | R:{<year 3>}}>", o) == []

    def test_rest_conditions_injective(self):
        o = obj("p", atom("year", 3))
        # two conditions need two distinct members
        assert (
            bindings_of("<p {| R:{<year 3> <year Y>}}>", o) == []
        )

    def test_empty_set_pattern_matches_any_set(self):
        o = obj("p", atom("a", 1))
        assert bindings_of("<p {}>", o) == [{}]

    def test_bare_variable_item_rejected_in_matching(self):
        o = obj("p", atom("a", 1))
        with pytest.raises(MSLMatchError):
            list(match_pattern(parse_pattern("<p {V}>"), o))


class TestDescendantMatching:
    @pytest.fixture
    def nested(self):
        return parse_one(
            """
            <&p, person, set, {&a}>
              <&a, address, set, {&c}>
                <&c, city, string, 'Palo Alto'>
            """
        )

    def test_descendant_matches_any_depth(self, nested):
        assert bindings_of("<person {.. <city C>}>", nested) == [
            {"C": "Palo Alto"}
        ]

    def test_direct_item_does_not_reach_deep(self, nested):
        assert bindings_of("<person {<city C>}>", nested) == []

    def test_descendant_does_not_consume_for_rest(self, nested):
        (env,) = match_pattern(
            parse_pattern("<person {.. <city C> | R}>"), nested
        )
        assert [o.label for o in env["R"]] == ["address"]

    def test_descendant_also_matches_direct_child(self):
        o = obj("p", atom("city", "PA"))
        assert bindings_of("<p {.. <city C>}>", o) == [{"C": "PA"}]


class TestForestMatching:
    def test_top_level_only_by_default(self):
        forest = parse_oem(
            "<&p, person, set, {&n}> <&n, name, string, 'A'>"
        )
        results = match_all(parse_pattern("<name N>"), forest)
        assert results == []

    def test_any_level(self):
        forest = parse_oem(
            "<&p, person, set, {&n}> <&n, name, string, 'A'>"
        )
        results = list(
            match_against_forest(
                parse_pattern("<name N>"), forest, any_level=True
            )
        )
        assert len(results) == 1

    def test_match_all_deduplicates(self):
        forest = [atom("a", 1, oid="&1"), atom("a", 1, oid="&2")]
        results = match_all(parse_pattern("<a X>"), forest)
        assert len(results) == 1

    def test_initial_bindings_respected(self):
        forest = [atom("a", 1), atom("a", 2)]
        start = EMPTY_BINDINGS.bind("X", 2)
        results = list(
            match_against_forest(parse_pattern("<a X>"), forest, start)
        )
        assert len(results) == 1

"""Unit tests for object identifiers (plain and semantic)."""

import threading

import pytest

from repro.oem import Oid, OidGenerator, SemanticOid, fresh_oid


class TestOid:
    def test_text_equality(self):
        assert Oid("&p1") == Oid("&p1")
        assert Oid("&p1") != Oid("&p2")

    def test_string_comparison(self):
        assert Oid("&p1") == "&p1"

    def test_hashable(self):
        assert len({Oid("&a"), Oid("&a"), Oid("&b")}) == 2

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Oid("&a").text = "&b"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Oid("")

    def test_str(self):
        assert str(Oid("&x")) == "&x"


class TestSemanticOid:
    def test_equality_by_functor_and_args(self):
        a = SemanticOid("person", ["Joe Chung"])
        b = SemanticOid("person", ["Joe Chung"])
        c = SemanticOid("person", ["Nick Naive"])
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_not_equal_to_plain_oid_with_same_text(self):
        semantic = SemanticOid("p", ["x"])
        plain = Oid(semantic.text)
        assert semantic != plain
        assert plain != semantic

    def test_text_rendering(self):
        assert SemanticOid("pub", ["T", 1996]).text == "pub('T', 1996)"

    def test_empty_functor_rejected(self):
        with pytest.raises(ValueError):
            SemanticOid("", ["x"])

    def test_multiple_args_order_matters(self):
        assert SemanticOid("f", [1, 2]) != SemanticOid("f", [2, 1])


class TestOidGenerator:
    def test_unique_sequence(self):
        gen = OidGenerator("&t")
        assert [str(gen()) for _ in range(3)] == ["&t1", "&t2", "&t3"]

    def test_reset(self):
        gen = OidGenerator("&t")
        gen()
        gen.reset()
        assert str(gen()) == "&t1"

    def test_fresh_oid_unique(self):
        assert fresh_oid() != fresh_oid()

    def test_concurrent_construction_never_duplicates(self):
        # regression guard for parallel plan execution: constructor
        # nodes on several dispatcher workers share one generator
        gen = OidGenerator("&c")
        workers, per_worker = 8, 250
        buckets: list[list[str]] = [[] for _ in range(workers)]
        barrier = threading.Barrier(workers)

        def run(bucket: list) -> None:
            barrier.wait()
            for _ in range(per_worker):
                bucket.append(str(gen()))

        threads = [
            threading.Thread(target=run, args=(bucket,))
            for bucket in buckets
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        produced = [oid for bucket in buckets for oid in bucket]
        assert len(produced) == workers * per_worker
        assert len(set(produced)) == len(produced)

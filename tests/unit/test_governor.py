"""Unit tests for the query governor: budgets, cancellation, sanitation."""

import random

import pytest

from repro.governor import (
    AnswerSanitizer,
    BudgetExceeded,
    BudgetWarning,
    CancellationToken,
    DEFAULT_MAX_DEPTH,
    QueryBudget,
    QueryCancelled,
    QueryGovernor,
)
from repro.mediator.tables import BindingTable
from repro.oem.model import OEMObject, SET_TYPE
from repro.reliability.clock import ManualClock
from repro.reliability.faults import (
    FaultInjectingSource,
    MALFORMED,
    MALFORMED_KINDS,
)
from repro.reliability.health import SourceWarning, aggregate_warnings
from repro.wrappers.base import MalformedAnswerError
from repro.wrappers.oem_wrapper import OEMStoreWrapper


class TestQueryBudget:
    def test_default_is_unlimited(self):
        budget = QueryBudget()
        assert budget.unlimited
        assert budget.describe() == "unlimited"

    def test_non_positive_limits_rejected(self):
        for field in (
            "deadline",
            "max_rows_per_table",
            "max_total_rows",
            "max_result_objects",
            "max_external_calls",
            "max_depth",
            "max_answer_objects",
        ):
            with pytest.raises(ValueError, match=field):
                QueryBudget(**{field: 0})
            with pytest.raises(ValueError, match=field):
                QueryBudget(**{field: -3})

    def test_describe_names_set_limits_only(self):
        text = QueryBudget(deadline=1.5, max_total_rows=10).describe()
        assert "deadline=1.5s" in text
        assert "max_total_rows=10" in text
        assert "max_rows_per_table" not in text


class TestCancellationToken:
    def test_cancel_flips_flag_and_raises_with_reason(self):
        token = CancellationToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op while live
        token.cancel("operator abort")
        assert token.cancelled
        with pytest.raises(QueryCancelled, match="operator abort"):
            token.raise_if_cancelled()

    def test_governor_checkpoint_honours_token(self):
        token = CancellationToken()
        governor = QueryGovernor(token=token)
        governor.start()
        governor.checkpoint()
        token.cancel()
        with pytest.raises(QueryCancelled):
            governor.checkpoint()


class TestGovernorRows:
    def table(self, governor=None):
        return BindingTable(("X",), [], governor)

    def test_strict_per_table_limit_raises_structured(self):
        governor = QueryGovernor(QueryBudget(max_rows_per_table=2))
        table = self.table(governor)
        table.append(("a",))
        table.append(("b",))
        with pytest.raises(BudgetExceeded) as excinfo:
            table.append(("c",))
        error = excinfo.value
        assert error.budget == "max_rows_per_table"
        assert error.observed == 3
        assert error.limit == 2
        assert "max_rows_per_table" in str(error)

    def test_strict_total_rows_limit_spans_tables(self):
        governor = QueryGovernor(QueryBudget(max_total_rows=3))
        first, second = self.table(governor), self.table(governor)
        first.append(("a",))
        first.append(("b",))
        second.append(("c",))
        with pytest.raises(BudgetExceeded) as excinfo:
            second.append(("d",))
        assert excinfo.value.budget == "max_total_rows"

    def test_truncate_clips_and_warns_once_per_node(self):
        governor = QueryGovernor(
            QueryBudget(max_rows_per_table=1), mode="truncate"
        )
        table = self.table(governor)
        for value in "abcde":
            table.append((value,))
        assert len(table.rows) == 1
        assert governor.rows_clipped == 4
        assert len(governor.warnings) == 1  # deduplicated at source
        (warning,) = governor.warnings
        assert isinstance(warning, BudgetWarning)
        assert warning.budget == "max_rows_per_table"
        assert "partial" in warning.render()

    def test_ungoverned_table_append_unchanged(self):
        table = self.table()
        table.append(("a",))
        assert table.rows == [("a",)]

    def test_derived_tables_inherit_the_governor(self):
        governor = QueryGovernor(
            QueryBudget(max_rows_per_table=2), mode="truncate"
        )
        table = BindingTable(("X", "Y"), [], governor)
        table.append((1, "a"))
        table.append((2, "b"))
        projected = table.project(("X",))
        assert projected.governor is governor
        assert projected.filter(lambda row: True).governor is governor


class TestGovernorCharges:
    def test_external_calls_capped(self):
        governor = QueryGovernor(QueryBudget(max_external_calls=2))
        assert governor.charge_external_call()
        assert governor.charge_external_call()
        with pytest.raises(BudgetExceeded) as excinfo:
            governor.charge_external_call()
        assert excinfo.value.budget == "max_external_calls"

    def test_result_objects_capped_truncate(self):
        governor = QueryGovernor(
            QueryBudget(max_result_objects=1), mode="truncate"
        )
        assert governor.charge_result_object()
        assert not governor.charge_result_object()
        assert governor.result_objects == 1

    def test_enforce_result_limit_clips_in_truncate(self):
        governor = QueryGovernor(
            QueryBudget(max_result_objects=2), mode="truncate"
        )
        objects = [OEMObject("x", i) for i in range(5)]
        clipped = governor.enforce_result_limit(objects)
        assert len(clipped) == 2
        assert clipped == objects[:2]
        assert any(
            w.budget == "max_result_objects" for w in governor.warnings
        )

    def test_enforce_result_limit_raises_in_strict(self):
        governor = QueryGovernor(QueryBudget(max_result_objects=2))
        with pytest.raises(BudgetExceeded):
            governor.enforce_result_limit(
                [OEMObject("x", i) for i in range(3)]
            )


class TestGovernorDeadline:
    def test_deadline_checked_against_injected_clock(self):
        clock = ManualClock()
        governor = QueryGovernor(QueryBudget(deadline=1.0), clock=clock)
        governor.start()
        governor.checkpoint()  # within budget
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded) as excinfo:
            governor.checkpoint()
        assert excinfo.value.budget == "deadline"
        assert excinfo.value.observed == pytest.approx(2.0)

    def test_truncate_deadline_expires_run_and_skips_sources(self):
        clock = ManualClock()
        governor = QueryGovernor(
            QueryBudget(deadline=1.0), mode="truncate", clock=clock
        )
        governor.start()
        assert governor.allow_source_call("whois")
        clock.advance(5.0)
        governor.checkpoint()
        assert governor.expired
        assert not governor.allow_source_call("whois")
        table = BindingTable(("X",), [], governor)
        table.append(("late",))
        assert table.rows == []  # expired runs admit nothing
        kinds = {w.budget for w in governor.warnings}
        assert kinds == {"deadline"}

    def test_start_is_idempotent(self):
        clock = ManualClock()
        governor = QueryGovernor(QueryBudget(deadline=10.0), clock=clock)
        governor.start()
        clock.advance(3.0)
        governor.start()  # nested plan must not reset the deadline
        assert governor.elapsed == pytest.approx(3.0)


def person(name="Joe Chung", dept="CS"):
    return OEMObject(
        "person",
        (OEMObject("name", name), OEMObject("dept", dept)),
    )


def corrupt(obj, attr, value):
    object.__setattr__(obj, attr, value)
    return obj


class TestAnswerSanitizer:
    def test_well_formed_answer_passes_through_untouched(self):
        sanitizer = AnswerSanitizer()
        answer = [person()]
        clean, warnings = sanitizer.sanitize("whois", answer)
        assert clean[0] is answer[0]
        assert warnings == []

    def test_non_oem_item_quarantined(self):
        clean, warnings = AnswerSanitizer().sanitize("whois", [MALFORMED])
        assert clean == []
        (warning,) = warnings
        assert warning.source == "whois"
        assert warning.error == "MalformedAnswer"
        assert "non-OEM" in warning.message

    def test_typed_corruption_quarantined_siblings_survive(self):
        bad = corrupt(OEMObject("age", 41, "integer"), "value", "old")
        parent = OEMObject("person", (OEMObject("name", "Ann"), bad))
        clean, warnings = AnswerSanitizer().sanitize("whois", [parent])
        (survivor,) = clean
        assert [c.label for c in survivor.children] == ["name"]
        assert len(warnings) == 1
        assert "declares type 'integer'" in warnings[0].message

    def test_bad_label_quarantined(self):
        bad = corrupt(OEMObject("name", "x"), "label", 7)
        clean, warnings = AnswerSanitizer().sanitize("whois", [bad])
        assert clean == []
        assert "invalid label" in warnings[0].message

    def test_unknown_declared_type_quarantined(self):
        bad = corrupt(OEMObject("name", "x"), "type", "quaternion")
        clean, warnings = AnswerSanitizer().sanitize("whois", [bad])
        assert clean == []
        assert "unknown type" in warnings[0].message

    def test_real_accepts_integer_value(self):
        obj = corrupt(OEMObject("gpa", 3.0, "real"), "value", 4)
        clean, warnings = AnswerSanitizer().sanitize("whois", [obj])
        assert clean == [obj]
        assert warnings == []

    def test_excess_depth_quarantines_subtree(self):
        deep = OEMObject("leaf", "bottom")
        for level in range(10):
            deep = OEMObject(f"l{level}", (deep,))
        clean, warnings = AnswerSanitizer(max_depth=5).sanitize(
            "whois", [deep]
        )
        (survivor,) = clean
        assert "nesting depth" in warnings[0].message

        def max_depth(obj, depth=1):
            kids = obj.children
            if not kids:
                return depth
            return max(max_depth(c, depth + 1) for c in kids)

        assert max_depth(survivor) <= 5

    def test_cycle_back_edge_quarantined(self):
        inner = OEMObject("inner", (), SET_TYPE)
        outer = OEMObject("outer", (inner,), SET_TYPE)
        corrupt(inner, "value", (outer,))
        clean, warnings = AnswerSanitizer().sanitize("whois", [outer])
        assert len(clean) == 1
        assert "cycle" in warnings[0].message

    def test_max_objects_quarantines_remainder(self):
        answer = [person(f"P{i}") for i in range(10)]
        clean, warnings = AnswerSanitizer(max_objects=6).sanitize(
            "whois", answer
        )
        assert len(clean) < len(answer)
        assert any("exceeds 6 objects" in w.message for w in warnings)

    def test_strict_mode_raises_malformed_answer_error(self):
        sanitizer = AnswerSanitizer(mode="strict")
        with pytest.raises(MalformedAnswerError) as excinfo:
            sanitizer.sanitize("whois", [MALFORMED])
        error = excinfo.value
        assert error.source == "whois"
        assert error.issues
        assert "whois" in str(error)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AnswerSanitizer(mode="paranoid")
        with pytest.raises(ValueError):
            AnswerSanitizer(max_depth=0)
        with pytest.raises(ValueError):
            AnswerSanitizer(max_objects=-1)


class TestSanitizerFuzz:
    """Seeded fuzz: random corruption never crashes the sanitizer."""

    def random_forest(self, rng, depth=0):
        objects = []
        for _ in range(rng.randint(1, 3)):
            if depth < 3 and rng.random() < 0.5:
                kids = self.random_forest(rng, depth + 1)
                objects.append(OEMObject(f"set{depth}", tuple(kids)))
            else:
                value = rng.choice(["txt", 7, 2.5, True, None])
                objects.append(OEMObject("atom", value))
        return objects

    def corrupt_some(self, rng, objects):
        for obj in objects:
            if rng.random() < 0.3:
                attack = rng.choice(("label", "type", "value"))
                if attack == "label":
                    corrupt(obj, "label", rng.choice(("", 0, None)))
                elif attack == "type":
                    corrupt(obj, "type", rng.choice(("junk", 9, "set")))
                else:
                    corrupt(obj, "value", rng.choice(("x", 1, [1], obj)))
            if obj.type == SET_TYPE and isinstance(obj.value, tuple):
                self.corrupt_some(rng, list(obj.value))
        return objects

    @pytest.mark.parametrize("seed", range(25))
    def test_lenient_sanitizer_survives_and_is_idempotent(self, seed):
        rng = random.Random(seed)
        answer = self.corrupt_some(rng, self.random_forest(rng))
        sanitizer = AnswerSanitizer(max_depth=16, max_objects=200)
        clean, _ = sanitizer.sanitize("fuzz", answer)
        # surviving objects are fully valid: a second pass changes nothing
        again, warnings = sanitizer.sanitize("fuzz", clean)
        assert warnings == []
        assert [repr(o) for o in again] == [repr(o) for o in clean]


class TestMalformedFaultKinds:
    def build(self, kind):
        return FaultInjectingSource(
            OEMStoreWrapper("w", [person()]),
            seed=3,
            malformed_rate=1.0,
            malformed_kind=kind,
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="malformed_kind"):
            self.build("weird")

    def test_all_kinds_recorded_as_malformed_outcome(self):
        for kind in sorted(MALFORMED_KINDS):
            source = self.build(kind)
            answer = source.export()
            assert source.outcomes == ["malformed"]
            # every kind is caught by the sanitizer
            clean, warnings = AnswerSanitizer(max_depth=64).sanitize(
                "w", list(answer)
            )
            assert warnings, f"kind {kind!r} passed sanitation"

    def test_deep_kind_is_valid_oem_but_too_deep(self):
        (deep,) = self.build("deep").export()
        assert isinstance(deep, OEMObject)
        clean, warnings = AnswerSanitizer(
            max_depth=DEFAULT_MAX_DEPTH
        ).sanitize("w", [deep])
        assert any("nesting depth" in w.message for w in warnings)

    def test_typed_kind_carries_lying_type_and_label(self):
        (obj,) = self.build("typed").export()
        _, warnings = AnswerSanitizer().sanitize("w", [obj])
        messages = " | ".join(w.message for w in warnings)
        assert "declares type" in messages
        assert "label" in messages

    def test_cyclic_kind_contains_back_edge(self):
        (obj,) = self.build("cyclic").export()
        _, warnings = AnswerSanitizer().sanitize("w", [obj])
        assert any("cycle" in w.message for w in warnings)


class TestWarningAggregation:
    def test_identical_source_warnings_fold_with_counts(self):
        warnings = [
            SourceWarning("whois", "boom", attempts=2, error="SourceError")
            for _ in range(3)
        ] + [SourceWarning("cs", "down", attempts=1, error="SourceError")]
        folded = aggregate_warnings(warnings)
        assert len(folded) == 2
        assert folded[0].count == 3
        assert folded[0].attempts == 6
        assert "[x3]" in folded[0].render()
        assert folded[1].count == 1
        assert "[x" not in folded[1].render()

    def test_budget_warnings_fold_by_budget_and_node(self):
        warnings = [
            BudgetWarning("max_total_rows", "clipped", node="scan")
            for _ in range(4)
        ] + [BudgetWarning("max_total_rows", "clipped", node="join")]
        folded = aggregate_warnings(warnings)
        assert [w.count for w in folded] == [4, 1]

    def test_mixed_kinds_never_fold_together(self):
        warnings = [
            SourceWarning("whois", "boom"),
            BudgetWarning("deadline", "late"),
            SourceWarning("whois", "boom"),
        ]
        folded = aggregate_warnings(warnings)
        assert len(folded) == 2
        assert folded[0].count == 2

    def test_order_is_first_occurrence(self):
        warnings = [
            SourceWarning("b", "x"),
            SourceWarning("a", "y"),
            SourceWarning("b", "x"),
        ]
        folded = aggregate_warnings(warnings)
        assert [w.source for w in folded] == ["b", "a"]


class TestGovernorDescribe:
    def test_describe_reports_mode_budget_and_sanitizer(self):
        governor = QueryGovernor(
            QueryBudget(max_total_rows=9),
            mode="truncate",
            sanitizer=AnswerSanitizer(max_depth=8),
        )
        text = governor.describe()
        assert "mode: truncate" in text
        assert "max_total_rows=9" in text
        assert "max_depth=8" in text

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            QueryGovernor(mode="lenient")

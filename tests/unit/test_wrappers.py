"""Unit tests for wrappers, capabilities, and the source registry."""

import pytest

from repro.datasets import build_cs_database, build_whois_objects
from repro.msl import Comparison, parse_pattern, parse_rule
from repro.oem import atom, obj, parse_oem
from repro.wrappers import (
    Capability,
    CapabilityViolation,
    FULL_CAPABILITY,
    OEMStoreWrapper,
    RelationalWrapper,
    SourceError,
    SourceRegistry,
)


class TestCapability:
    def test_full_capability_accepts_everything(self):
        p = parse_pattern("<person {<year 3> .. <deep D>}>")
        assert FULL_CAPABILITY.accepts(p)

    def test_split_moves_unfilterable_constants(self):
        cap = Capability(filterable_labels=frozenset({"name"}), name="t")
        relaxed, residual = cap.split(
            parse_pattern("<person {<name 'Joe'> <year 3>}>")
        )
        assert len(residual) == 1
        assert isinstance(residual[0], Comparison)
        assert residual[0].right.value == 3
        assert "<name 'Joe'>" in str(relaxed)
        assert "<year 3>" not in str(relaxed)

    def test_split_reaches_rest_conditions(self):
        cap = Capability(filterable_labels=frozenset({"name"}), name="t")
        relaxed, residual = cap.split(
            parse_pattern("<person {<name N> | R:{<year 3>}}>")
        )
        assert len(residual) == 1
        assert "<year 3>" not in str(relaxed)

    def test_accepts_after_split_is_consistent(self):
        cap = Capability(filterable_labels=frozenset({"name"}), name="t")
        p = parse_pattern("<person {<year 3>}>")
        assert not cap.accepts(p)
        relaxed, _ = cap.split(p)
        assert cap.accepts(relaxed)

    def test_check_raises(self):
        cap = Capability(filterable_labels=frozenset(), name="t")
        with pytest.raises(CapabilityViolation):
            cap.check(parse_pattern("<person {<year 3>}>"))

    def test_wildcards_unsupported(self):
        cap = Capability(supports_wildcards=False, name="t")
        with pytest.raises(CapabilityViolation, match="descendant"):
            cap.split(parse_pattern("<person {.. <year 3>}>"))

    def test_top_level_label_always_allowed(self):
        cap = Capability(filterable_labels=frozenset(), name="t")
        relaxed, residual = cap.split(parse_pattern("<person {<a A>}>"))
        assert residual == []


class TestOEMStoreWrapper:
    @pytest.fixture
    def whois(self):
        return OEMStoreWrapper("whois", build_whois_objects())

    def test_export(self, whois):
        assert len(whois.export()) == 2

    def test_answer_simple(self, whois):
        result = whois.answer(
            parse_rule("<n N> :- <person {<name N> <dept 'CS'>}>")
        )
        assert sorted(o.value for o in result) == ["Joe Chung", "Nick Naive"]

    def test_answer_with_own_source_annotation(self, whois):
        result = whois.answer(parse_rule("<n N> :- <person {<name N>}>@whois"))
        assert len(result) == 2

    def test_answer_foreign_source_rejected(self, whois):
        with pytest.raises(SourceError, match="sent to"):
            whois.answer(parse_rule("<n N> :- <person {<name N>}>@cs"))

    def test_comparisons_accepted_when_capability_allows(self, whois):
        result = whois.answer(
            parse_rule("<n N> :- <person {<name N> <year Y>}> AND Y > 1")
        )
        assert [o.value for o in result] == ["Nick Naive"]

    def test_comparisons_rejected_without_capability(self):
        limited = OEMStoreWrapper(
            "w",
            build_whois_objects(),
            capability=Capability(supports_comparisons=False, name="nocmp"),
        )
        with pytest.raises(SourceError, match="comparison"):
            limited.answer(
                parse_rule("<n N> :- <person {<name N> <year Y>}> AND Y > 1")
            )

    def test_external_calls_rejected(self, whois):
        with pytest.raises(SourceError, match="non-pattern"):
            whois.answer(
                parse_rule("<n U> :- <person {<name N>}> AND upper(N, U)")
            )

    def test_capability_enforced(self):
        limited = OEMStoreWrapper(
            "whois",
            build_whois_objects(),
            capability=Capability(
                filterable_labels=frozenset({"name"}), name="lim"
            ),
        )
        with pytest.raises(SourceError):
            limited.answer(parse_rule("<n N> :- <person {<name N> <year 3>}>"))

    def test_index_narrowing_matches_unindexed(self):
        objects = build_whois_objects()
        indexed = OEMStoreWrapper("a", objects, indexed=True)
        plain = OEMStoreWrapper("b", objects, indexed=False)
        query_a = parse_rule("<n N> :- <person {<name N> <relation 'student'>}>")
        query_b = parse_rule("<n N> :- <person {<name N> <relation 'student'>}>")
        assert [o.value for o in indexed.answer(query_a)] == [
            o.value for o in plain.answer(query_b)
        ]

    def test_candidates_use_index(self, whois):
        query = parse_rule("<n N> :- <person {<relation 'student'> <name N>}>")
        candidates = whois.candidates(query)
        assert len(candidates) == 1
        assert candidates[0].get("name") == "Nick Naive"

    def test_mutation_invalidates_index(self, whois):
        whois.answer(parse_rule("<n N> :- <person {<name N>}>"))
        whois.add(
            obj("person", atom("name", "New Gal"), atom("relation", "student"))
        )
        query = parse_rule("<n N> :- <person {<relation 'student'> <name N>}>")
        assert len(whois.answer(query)) == 2

    def test_remove_where_and_clear(self, whois):
        assert whois.remove_where("person") == 2
        assert len(whois) == 0
        whois.clear()
        assert whois.export() == []

    def test_counters(self, whois):
        whois.answer(parse_rule("<n N> :- <person {<name N>}>"))
        assert whois.queries_answered == 1
        assert whois.objects_returned == 2
        whois.reset_counters()
        assert whois.queries_answered == 0

    def test_bad_name_rejected(self):
        with pytest.raises(SourceError):
            OEMStoreWrapper("not a name", [])


class TestRelationalWrapper:
    @pytest.fixture
    def cs(self):
        return RelationalWrapper("cs", build_cs_database())

    def test_export_shape_figure_2_2(self, cs):
        export = cs.export()
        labels = sorted(o.label for o in export)
        assert labels == ["employee", "student"]
        employee = [o for o in export if o.label == "employee"][0]
        assert employee.get("first_name") == "Joe"
        assert employee.get("reports_to") == "John Hennessy"

    def test_nulls_become_absent_subobjects(self):
        db = build_cs_database(extra_employees=[("Ann", "Ace", None, None)])
        wrapper = RelationalWrapper("cs", db)
        ann = [
            o
            for o in wrapper.export()
            if o.label == "employee" and o.get("first_name") == "Ann"
        ][0]
        assert ann.first("title") is None
        assert len(ann.children) == 2

    def test_candidates_select_relation_by_label(self, cs):
        query = parse_rule("<x R2> :- <student {<year 3> | R2}>")
        candidates = cs.candidates(query)
        assert len(candidates) == 1
        assert candidates[0].label == "student"

    def test_candidates_unknown_relation_empty(self, cs):
        query = parse_rule("<x X> :- <professor {<name X>}>")
        assert cs.candidates(query) == []
        assert cs.answer(query) == []

    def test_candidates_missing_attribute_prunes_table(self, cs):
        query = parse_rule("<x X> :- <R {<year 3> <first_name X>}>")
        candidates = cs.candidates(query)
        assert all(o.label == "student" for o in candidates)

    def test_variable_relation_scans_all(self, cs):
        query = parse_rule("<x FN> :- <R {<first_name FN>}>")
        result = cs.answer(query)
        assert sorted(o.value for o in result) == ["Joe", "Nick"]

    def test_answer_paper_qcs(self, cs):
        query = parse_rule(
            "<bind_for_Rest2 Rest2> :- "
            "<employee {<last_name 'Chung'> <first_name 'Joe'> | Rest2}>"
        )
        (result,) = cs.answer(query)
        labels = sorted(c.label for c in result.children)
        assert labels == ["reports_to", "title"]

    def test_schema_evolution_visible(self, cs):
        cs.database.table("student").add_attribute("birthday")
        cs.database.table("student").delete_where(lambda r: True)
        cs.database.table("student").insert("Pat", "Px", 2, "1970-05-05")
        pat = [o for o in cs.export() if o.get("first_name") == "Pat"][0]
        assert pat.get("birthday") == "1970-05-05"


class TestSourceRegistry:
    def test_register_resolve(self):
        registry = SourceRegistry()
        wrapper = OEMStoreWrapper("s", [])
        registry.register(wrapper)
        assert registry.resolve("s") is wrapper
        assert "s" in registry
        assert len(registry) == 1

    def test_duplicate_name_rejected(self):
        registry = SourceRegistry(OEMStoreWrapper("s", []))
        with pytest.raises(SourceError, match="already"):
            registry.register(OEMStoreWrapper("s", []))

    def test_unknown_source(self):
        registry = SourceRegistry()
        with pytest.raises(SourceError, match="no source named"):
            registry.resolve("ghost")

    def test_none_source(self):
        with pytest.raises(SourceError, match="lacks"):
            SourceRegistry().resolve(None)

    def test_deregister(self):
        registry = SourceRegistry(OEMStoreWrapper("s", []))
        registry.deregister("s")
        assert "s" not in registry
        with pytest.raises(SourceError):
            registry.deregister("s")

    def test_iteration_sorted(self):
        registry = SourceRegistry(
            OEMStoreWrapper("b", []), OEMStoreWrapper("a", [])
        )
        assert [s.name for s in registry] == ["a", "b"]
        assert registry.names() == ["a", "b"]

"""Unit tests for schema facts and facts-based rule pruning."""

import pytest

from repro.datasets import build_scenario
from repro.msl import parse_pattern, parse_query
from repro.oem import atom, obj, parse_oem
from repro.wrappers import (
    OEMStoreWrapper,
    RelationalWrapper,
    SchemaFacts,
    pattern_satisfiable,
)


FACTS = SchemaFacts(
    {
        "employee": ["first_name", "last_name", "title", "reports_to"],
        "student": ["first_name", "last_name", "year"],
    }
)


class TestSchemaFacts:
    def test_top_labels(self):
        assert FACTS.top_labels == {"employee", "student"}

    def test_may_have_top(self):
        assert FACTS.may_have_top("student")
        assert not FACTS.may_have_top("professor")

    def test_may_have_child(self):
        assert FACTS.may_have_child("student", "year")
        assert not FACTS.may_have_child("employee", "year")
        assert not FACTS.may_have_child("ghost", "year")

    def test_may_have_child_any_top(self):
        assert FACTS.may_have_child(None, "year")
        assert not FACTS.may_have_child(None, "office")

    def test_open_facts_never_refuse(self):
        open_facts = SchemaFacts({}, closed=False)
        assert open_facts.may_have_top("anything")
        assert open_facts.may_have_child("x", "y")

    def test_tops_with_children(self):
        assert FACTS.tops_with_children({"year"}) == ["student"]
        assert set(FACTS.tops_with_children({"first_name"})) == {
            "employee",
            "student",
        }
        assert FACTS.tops_with_children({"office"}) == []


class TestPatternSatisfiable:
    def test_none_facts_always_satisfiable(self):
        assert pattern_satisfiable(parse_pattern("<x {<y Y>}>"), None)

    def test_unknown_top_label(self):
        assert not pattern_satisfiable(parse_pattern("<professor {}>"), FACTS)

    def test_known_structure(self):
        p = parse_pattern("<student {<year 3> | R}>")
        assert pattern_satisfiable(p, FACTS)

    def test_impossible_child(self):
        p = parse_pattern("<student {<office O>}>")
        assert not pattern_satisfiable(p, FACTS)

    def test_rest_conditions_checked(self):
        p = parse_pattern("<student {| R:{<office O>}}>")
        assert not pattern_satisfiable(p, FACTS)
        p2 = parse_pattern("<student {| R:{<year 3>}}>")
        assert pattern_satisfiable(p2, FACTS)

    def test_variable_top_needs_some_cover(self):
        assert pattern_satisfiable(parse_pattern("<T {<year Y>}>"), FACTS)
        assert not pattern_satisfiable(
            parse_pattern("<T {<office O>}>"), FACTS
        )

    def test_variable_child_labels_never_prune(self):
        assert pattern_satisfiable(parse_pattern("<student {<L V>}>"), FACTS)

    def test_descendant_items_never_prune(self):
        assert pattern_satisfiable(
            parse_pattern("<student {.. <office O>}>"), FACTS
        )


class TestWrapperFacts:
    def test_relational_wrapper_derives_facts(self):
        scenario = build_scenario()
        facts = scenario.cs.schema_facts
        assert facts.top_labels == {"employee", "student"}
        assert facts.may_have_child("student", "year")

    def test_relational_facts_track_schema_evolution(self):
        scenario = build_scenario()
        assert not scenario.cs.schema_facts.may_have_child(
            "student", "birthday"
        )
        scenario.cs.database.table("student").add_attribute("birthday")
        assert scenario.cs.schema_facts.may_have_child("student", "birthday")

    def test_oem_wrapper_opt_in(self):
        objects = parse_oem("<&1, rec, set, {<&2, k, integer, 1>}>")
        silent = OEMStoreWrapper("a", objects)
        chatty = OEMStoreWrapper("b", objects, export_facts=True)
        assert silent.schema_facts is None
        assert chatty.schema_facts.may_have_child("rec", "k")
        assert not chatty.schema_facts.may_have_child("rec", "z")

    def test_oem_wrapper_facts_invalidate_on_mutation(self):
        chatty = OEMStoreWrapper("b", [], export_facts=True)
        assert not chatty.schema_facts.may_have_top("rec")
        chatty.add(obj("rec", atom("k", 1)))
        assert chatty.schema_facts.may_have_top("rec")


class TestOptimizerPruning:
    def test_impossible_rule_pruned(self):
        scenario = build_scenario(push_mode="needed")
        scenario.mediator.answer(
            "S :- S:<cs_person {<e_mail 'chung@cs'>}>@med"
        )
        # the rule pushing e_mail toward cs is pruned (no table has it)
        assert scenario.mediator.optimizer.rules_pruned == 1
        assert scenario.mediator.last_context.queries_sent["whois"] == 1

    def test_answers_unchanged_by_pruning(self):
        query = "S :- S:<cs_person {<e_mail 'chung@cs'>}>@med"
        pruned = build_scenario(push_mode="needed")
        unpruned = build_scenario(push_mode="needed")
        unpruned.mediator.optimizer.prune_with_facts = False
        left = {
            str(o.get("name")) for o in pruned.mediator.answer(query)
        }
        right = {
            str(o.get("name")) for o in unpruned.mediator.answer(query)
        }
        assert left == right == {"Joe Chung"}
        assert unpruned.mediator.optimizer.rules_pruned == 0

    def test_satisfiable_rules_survive(self):
        scenario = build_scenario(push_mode="needed")
        scenario.mediator.answer("S :- S:<cs_person {<year 3>}>@med")
        # year exists in cs (student table), so tau2 is NOT pruned; the
        # tau1 rule pushes year toward whois, which exports no facts
        assert scenario.mediator.optimizer.rules_pruned == 0

"""Unit tests for the OEM object model."""

import pytest

from repro.oem import (
    OEMError,
    OEMObject,
    OEMTypeError,
    Oid,
    atom,
    infer_type,
    obj,
)


class TestInferType:
    def test_string(self):
        assert infer_type("CS") == "string"

    def test_integer(self):
        assert infer_type(3) == "integer"

    def test_real(self):
        assert infer_type(3.5) == "real"

    def test_boolean_not_integer(self):
        assert infer_type(True) == "boolean"

    def test_bytes(self):
        assert infer_type(b"x") == "bytes"

    def test_null(self):
        assert infer_type(None) == "null"

    def test_collections_are_sets(self):
        assert infer_type([]) == "set"
        assert infer_type(()) == "set"
        assert infer_type(set()) == "set"

    def test_unknown_type_raises(self):
        with pytest.raises(OEMTypeError):
            infer_type(object())


class TestConstruction:
    def test_atomic_object_fields(self):
        o = OEMObject("dept", "CS", "string", "&12")
        assert o.label == "dept"
        assert o.type == "string"
        assert o.value == "CS"
        assert o.oid.text == "&12"

    def test_type_inferred_when_omitted(self):
        assert OEMObject("year", 3).type == "integer"

    def test_fresh_oid_allocated_when_omitted(self):
        a = OEMObject("x", 1)
        b = OEMObject("x", 1)
        assert a.oid != b.oid

    def test_set_object_children(self):
        child = atom("name", "Joe")
        parent = OEMObject("person", [child])
        assert parent.is_set
        assert parent.children == (child,)

    def test_empty_label_rejected(self):
        with pytest.raises(OEMError):
            OEMObject("", "x")

    def test_non_string_label_rejected(self):
        with pytest.raises(OEMError):
            OEMObject(42, "x")  # type: ignore[arg-type]

    def test_value_type_mismatch_rejected(self):
        with pytest.raises(OEMTypeError):
            OEMObject("year", "three", "integer")

    def test_boolean_value_must_be_bool(self):
        with pytest.raises(OEMTypeError):
            OEMObject("flag", 1, "boolean")

    def test_integer_value_may_not_be_bool(self):
        with pytest.raises(OEMTypeError):
            OEMObject("year", True, "integer")

    def test_real_accepts_int_and_normalises(self):
        o = OEMObject("ratio", 2, "real")
        assert o.value == 2.0
        assert isinstance(o.value, float)

    def test_null_must_carry_none(self):
        with pytest.raises(OEMTypeError):
            OEMObject("gone", "x", "null")

    def test_unknown_atomic_type_rejected(self):
        with pytest.raises(OEMTypeError):
            OEMObject("x", "y", "varchar")

    def test_set_value_must_be_iterable_of_objects(self):
        with pytest.raises(OEMTypeError):
            OEMObject("s", ["not an object"], "set")

    def test_string_is_not_a_set_value(self):
        with pytest.raises(OEMTypeError):
            OEMObject("s", "abc", "set")


class TestImmutability:
    def test_setattr_rejected(self):
        o = atom("a", 1)
        with pytest.raises(AttributeError):
            o.label = "b"

    def test_delattr_rejected(self):
        o = atom("a", 1)
        with pytest.raises(AttributeError):
            del o.label


class TestAccessors:
    @pytest.fixture
    def person(self):
        return obj(
            "person",
            atom("name", "Joe Chung"),
            atom("dept", "CS"),
            atom("dept", "EE"),
        )

    def test_is_atomic(self):
        assert atom("a", 1).is_atomic
        assert not atom("a", 1).is_set

    def test_children_of_atom_empty(self):
        assert atom("a", 1).children == ()

    def test_subobjects_all(self, person):
        assert len(person.subobjects()) == 3

    def test_subobjects_by_label(self, person):
        depts = person.subobjects("dept")
        assert [d.value for d in depts] == ["CS", "EE"]

    def test_first(self, person):
        assert person.first("dept").value == "CS"
        assert person.first("missing") is None

    def test_get_with_default(self, person):
        assert person.get("name") == "Joe Chung"
        assert person.get("missing", "?") == "?"

    def test_iter_and_len(self, person):
        assert len(person) == 3
        assert [c.label for c in person] == ["name", "dept", "dept"]


class TestDerivedCopies:
    def test_with_children(self):
        parent = obj("p", atom("a", 1))
        replaced = parent.with_children([atom("b", 2)])
        assert [c.label for c in replaced.children] == ["b"]
        assert replaced.oid == parent.oid

    def test_with_children_on_atom_rejected(self):
        with pytest.raises(OEMTypeError):
            atom("a", 1).with_children([])

    def test_with_label(self):
        o = atom("a", 1).with_label("b")
        assert o.label == "b"
        assert o.value == 1

    def test_with_oid(self):
        o = atom("a", 1).with_oid("&new")
        assert o.oid == Oid("&new")


class TestEqualitySemantics:
    def test_equality_ignores_oid(self):
        assert OEMObject("a", 1, oid="&1") == OEMObject("a", 1, oid="&2")

    def test_equality_ignores_child_order(self):
        left = obj("p", atom("a", 1), atom("b", 2))
        right = obj("p", atom("b", 2), atom("a", 1))
        assert left == right
        assert hash(left) == hash(right)

    def test_label_matters(self):
        assert atom("a", 1) != atom("b", 1)

    def test_value_matters(self):
        assert atom("a", 1) != atom("a", 2)

    def test_not_equal_to_other_types(self):
        assert atom("a", 1) != "a"

    def test_repr_mentions_components(self):
        text = repr(OEMObject("dept", "CS", "string", "&12"))
        assert "&12" in text and "dept" in text and "CS" in text

"""Unit tests for OEM printing, builders, and traversal."""

import pytest

from repro.oem import (
    OEMTypeError,
    atom,
    count_objects,
    depth,
    descendants,
    find_all,
    find_by_label,
    from_python,
    obj,
    parse_oem,
    paths_to,
    structurally_equal,
    to_inline,
    to_python,
    to_text,
    walk,
)
from repro.datasets import deep_object


class TestPrinter:
    def test_to_text_reference_style(self):
        person = obj("p", atom("n", "Joe", oid="&n"), oid="&p")
        text = to_text([person])
        assert "<&p, p, set, {&n}>" in text
        assert "  <&n, n, string, 'Joe'>" in text
        assert text.endswith(";")

    def test_roundtrip(self):
        person = obj(
            "person",
            atom("name", "Joe"),
            obj("addr", atom("city", "Palo Alto")),
            atom("year", 3),
        )
        reparsed = parse_oem(to_text([person]))
        assert len(reparsed) == 1
        assert structurally_equal(person, reparsed[0])

    def test_quote_escaping_roundtrip(self):
        o = atom("name", "O'Hara")
        assert parse_oem(to_text([o]))[0].value == "O'Hara"

    def test_to_inline(self):
        person = obj("p", atom("n", "Joe"))
        assert to_inline(person) == "<p {<n 'Joe'>}>"

    def test_to_inline_with_oid(self):
        o = atom("n", 1, oid="&x")
        assert to_inline(o, with_oid=True) == "<&x, n 1>"

    def test_booleans_and_null(self):
        assert to_inline(atom("f", True)) == "<f true>"
        assert to_inline(atom("g", None, "null")) == "<g null>"


class TestBuilders:
    def test_from_python_mapping(self):
        o = from_python("person", {"name": "Ann", "year": 2})
        assert o.get("name") == "Ann"
        assert o.get("year") == 2

    def test_from_python_nested(self):
        o = from_python("person", {"addr": {"city": "PA"}})
        assert o.first("addr").get("city") == "PA"

    def test_from_python_list_items(self):
        o = from_python("tags", ["a", "b"])
        assert [c.value for c in o.children] == ["a", "b"]
        assert all(c.label == "item" for c in o.children)

    def test_from_python_labelled_pairs(self):
        o = from_python("pair", [("x", 1), ("y", 2)])
        assert [c.label for c in o.children] == ["x", "y"]

    def test_to_python_roundtrip(self):
        data = {"name": "Ann", "year": 2, "addr": {"city": "PA"}}
        assert to_python(from_python("p", data)) == data

    def test_to_python_repeated_labels_collect(self):
        o = obj("p", atom("tag", "a"), atom("tag", "b"))
        assert to_python(o) == {"tag": ["a", "b"]}

    def test_from_python_existing_object_relabelled(self):
        inner = atom("x", 1)
        assert from_python("y", inner).label == "y"


class TestTraverse:
    @pytest.fixture
    def forest(self):
        return [
            obj("p", atom("a", 1), obj("q", atom("a", 2))),
            atom("b", 3),
        ]

    def test_walk_counts_everything(self, forest):
        assert len(list(walk(forest))) == 5

    def test_walk_is_breadth_first(self, forest):
        labels = [o.label for o in walk(forest)]
        assert labels == ["p", "b", "a", "q", "a"]

    def test_descendants_excludes_self(self, forest):
        labels = [o.label for o in descendants(forest[0])]
        assert labels == ["a", "q", "a"]

    def test_find_by_label(self, forest):
        assert len(find_by_label(forest, "a")) == 2

    def test_find_all_predicate(self, forest):
        found = find_all(forest, lambda o: o.is_atomic and o.value == 2)
        assert len(found) == 1

    def test_paths_to(self, forest):
        paths = paths_to(forest[0], lambda o: o.label == "a")
        assert sorted(len(p) for p in paths) == [2, 3]
        assert all(p[0] is forest[0] for p in paths)

    def test_depth(self):
        assert depth(atom("x", 1)) == 1
        assert depth(deep_object(5)) == 5

    def test_count_objects(self, forest):
        assert count_objects(forest) == 5

    def test_deep_structure_is_iterative(self):
        # would blow the recursion limit if depth() recursed
        assert depth(deep_object(3000, fanout=1)) == 3000


class TestSharedSubobjects:
    """OEM structures are DAGs: shared sub-objects round-trip."""

    def test_shared_child_defined_once(self):
        from repro.oem import parse_oem, to_text

        roots = parse_oem(
            "<&a, p, set, {&s}> <&b, q, set, {&s}> <&s, v, integer, 1>"
        )
        text = to_text(roots)
        assert text.count("<&s, v, integer, 1>") == 1

    def test_shared_child_roundtrip(self):
        from repro.oem import parse_oem, structurally_equal, to_text

        roots = parse_oem(
            "<&a, p, set, {&s}> <&b, q, set, {&s}> <&s, v, integer, 1>"
        )
        again = parse_oem(to_text(roots))
        assert len(again) == 2
        for left, right in zip(roots, again):
            assert structurally_equal(left, right)

    def test_diamond_sharing(self):
        from repro.oem import parse_oem, structurally_equal, to_text

        roots = parse_oem(
            "<&r, root, set, {&x, &y}>"
            " <&x, left, set, {&s}> <&y, right, set, {&s}>"
            " <&s, leaf, integer, 7>"
        )
        again = parse_oem(to_text(roots))
        assert structurally_equal(roots[0], again[0])

"""Unit tests for structural comparison and duplicate elimination."""

from repro.oem import (
    atom,
    eliminate_duplicates,
    is_subobject_set,
    obj,
    structural_hash,
    structural_key,
    structurally_equal,
)


class TestStructuralKey:
    def test_atom_key_components(self):
        assert structural_key(atom("year", 3)) == ("year", "integer", 3)

    def test_set_key_order_insensitive(self):
        a = obj("p", atom("a", 1), atom("b", 2))
        b = obj("p", atom("b", 2), atom("a", 1))
        assert structural_key(a) == structural_key(b)

    def test_duplicate_members_collapse_in_key(self):
        once = obj("p", atom("a", 1))
        twice = obj("p", atom("a", 1), atom("a", 1))
        assert structural_key(once) == structural_key(twice)

    def test_nested_difference_detected(self):
        a = obj("p", obj("q", atom("a", 1)))
        b = obj("p", obj("q", atom("a", 2)))
        assert structural_key(a) != structural_key(b)


class TestStructurallyEqual:
    def test_same_object(self):
        o = atom("a", 1)
        assert structurally_equal(o, o)

    def test_label_type_value(self):
        assert structurally_equal(atom("a", 1), atom("a", 1))
        assert not structurally_equal(atom("a", 1), atom("a", 1.0))
        assert not structurally_equal(atom("a", 1), atom("b", 1))

    def test_atom_vs_set(self):
        assert not structurally_equal(atom("a", 1), obj("a"))

    def test_hash_consistent(self):
        a = obj("p", atom("a", 1))
        b = obj("p", atom("a", 1))
        assert structural_hash(a) == structural_hash(b)


class TestEliminateDuplicates:
    def test_keeps_first_occurrence(self):
        first = atom("a", 1, oid="&1")
        second = atom("a", 1, oid="&2")
        result = eliminate_duplicates([first, second])
        assert result == [first]
        assert result[0].oid.text == "&1"

    def test_distinct_objects_kept(self):
        objects = [atom("a", 1), atom("a", 2), atom("b", 1)]
        assert eliminate_duplicates(objects) == objects

    def test_empty(self):
        assert eliminate_duplicates([]) == []

    def test_nested_duplicates(self):
        a = obj("p", atom("x", 1), atom("y", 2))
        b = obj("p", atom("y", 2), atom("x", 1))
        assert len(eliminate_duplicates([a, b])) == 1


class TestIsSubobjectSet:
    def test_subset(self):
        small = [atom("a", 1)]
        large = [atom("a", 1), atom("b", 2)]
        assert is_subobject_set(small, large)
        assert not is_subobject_set(large, small)

    def test_empty_is_subset(self):
        assert is_subobject_set([], [atom("a", 1)])

"""Unit tests for the engine/logical/mediator surfaces not covered
elsewhere: trace rendering, empty programs, explain output, and the
LogicalDatamergeProgram API."""

import pytest

from repro.datasets import JOE_CHUNG_QUERY, build_scenario
from repro.mediator import (
    DatamergeEngine,
    ExecutionContext,
    LogicalDatamergeProgram,
    LogicalRule,
    TraceEntry,
)
from repro.mediator.plan import PhysicalPlan, UnionNode
from repro.msl import parse_query, parse_rule


class TestLogicalProgram:
    def test_len_iter_empty(self):
        program = LogicalDatamergeProgram(())
        assert len(program) == 0
        assert list(program) == []
        assert program.is_empty()

    def test_str_joins_rules(self):
        rule = LogicalRule(parse_rule("<a X> :- <b X>@s"))
        program = LogicalDatamergeProgram((rule, rule))
        assert str(program).count(":-") == 2

    def test_logical_rule_str(self):
        rule = LogicalRule(parse_rule("<a X> :- <b X>@s"))
        assert str(rule) == "<a X> :- <b X>@s"


class TestEmptyProgramExecution:
    def test_empty_union_plan_yields_no_objects(self):
        scenario = build_scenario()
        plan = PhysicalPlan(UnionNode((), True))
        context = ExecutionContext(
            sources=scenario.registry,
            externals=scenario.mediator.externals,
        )
        engine = DatamergeEngine()
        assert engine.execute_to_objects(plan, context) == []
        assert context.total_queries == 0

    def test_mediator_answer_empty_program(self):
        scenario = build_scenario()
        assert scenario.mediator.answer("X :- X:<ghost {}>@med") == []
        # no source was ever contacted
        assert scenario.mediator.last_context.total_queries == 0


class TestTraceRendering:
    def test_trace_entry_render(self):
        scenario = build_scenario(trace=True)
        scenario.mediator.answer(JOE_CHUNG_QUERY)
        trace = scenario.mediator.last_context.trace
        assert trace
        for entry in trace:
            assert isinstance(entry, TraceEntry)
            rendered = entry.render()
            assert entry.node.describe() in rendered

    def test_trace_disabled_by_default(self):
        scenario = build_scenario()
        scenario.mediator.answer(JOE_CHUNG_QUERY)
        assert scenario.mediator.last_context.trace is None

    def test_render_trace_empty_before_any_run(self):
        engine = DatamergeEngine(trace=True)
        assert engine.render_trace() == ""


class TestExplain:
    def test_multi_rule_explain(self):
        scenario = build_scenario()
        text = scenario.mediator.explain("X :- X:<cs_person {<year 3>}>@med")
        assert "rule(s)" in text
        assert "union" in text

    def test_explain_empty_program(self):
        scenario = build_scenario()
        text = scenario.mediator.explain("X :- X:<ghost {}>@med")
        assert "0 rule(s)" in text

    def test_explain_accepts_parsed_query(self):
        scenario = build_scenario()
        text = scenario.mediator.explain(parse_query(JOE_CHUNG_QUERY))
        assert "query whois" in text


class TestContextAccounting:
    def test_per_source_counters(self):
        scenario = build_scenario(push_mode="needed")
        scenario.mediator.answer(JOE_CHUNG_QUERY)
        context = scenario.mediator.last_context
        assert context.queries_sent == {"whois": 1, "cs": 1}
        assert context.objects_received["whois"] == 1
        assert context.total_objects == context.objects_received[
            "whois"
        ] + context.objects_received["cs"]

    def test_statistics_fed_by_context(self):
        scenario = build_scenario(push_mode="needed")
        assert not scenario.mediator.statistics.has_observations(
            "whois", "person"
        )
        scenario.mediator.answer(JOE_CHUNG_QUERY)
        assert scenario.mediator.statistics.has_observations(
            "whois", "person"
        )

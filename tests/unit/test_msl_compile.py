"""Unit tests for the compiled pattern backend and its support layers.

Covers the pattern compiler (:mod:`repro.msl.compile`), structural-key
memoization, the ``value_key`` bag canonicalisation, the positional
table fast paths, and the execution profiler — the pieces the compiled
backend leans on for its equivalence and performance guarantees.
"""

import pytest

from repro.exec import Profiler
from repro.mediator.tables import BindingTable, TableError
from repro.msl import (
    CompileCache,
    CompiledRule,
    SlotLayout,
    UNBOUND,
    compile_pattern,
    compile_rule,
    evaluate_rule,
    evaluate_rule_compiled,
    match_all,
    match_pattern,
    parse_rule,
)
from repro.msl.bindings import Bindings, value_key
from repro.oem import (
    atom,
    eliminate_duplicates,
    key_computations,
    obj,
    structural_key,
)
from repro.oem.oid import OidGenerator


def joe():
    return obj(
        "person",
        atom("name", "Joe Chung"),
        atom("dept", "CS"),
        atom("rel", "employee"),
    )


class TestSlotLayout:
    def test_registers_are_name_positions(self):
        layout = SlotLayout(["A", "M", "Z"])
        assert layout.names == ("A", "M", "Z")
        assert [layout.register(n) for n in ("A", "M", "Z")] == [0, 1, 2]
        assert layout.width == 3
        assert layout.empty_frame == (UNBOUND, UNBOUND, UNBOUND)

    def test_seed_places_incoming_bindings(self):
        layout = SlotLayout(["X", "Y"])
        frame = layout.seed(Bindings({"Y": 7}))
        assert frame[layout.register("X")] is UNBOUND
        assert frame[layout.register("Y")] == 7

    def test_roundtrip_to_bindings(self):
        layout = SlotLayout(["X"])
        frame = layout.seed(Bindings({"X": "v"}))
        assert dict(layout.to_bindings(frame).items()) == {"X": "v"}


class TestCompiledPattern:
    def test_matches_equal_reference_matcher(self):
        pattern = parse_rule(
            "<n N> :- <person {<name N>}>"
        ).tail[0].pattern
        forest = [joe(), obj("person", atom("name", "Ann"))]
        expected = [e.key() for e in match_all(pattern, forest)]
        compiled = compile_pattern(pattern)
        assert [e.key() for e in compiled.match_all(forest)] == expected

    def test_constant_reordering_preserves_solution_order(self):
        # the variable item is written first, the constant second: the
        # compiled matcher tries the constant first but must report
        # solutions in the interpretive (written-order) enumeration
        pattern = parse_rule(
            "<x X> :- <person {<name X> <rel 'employee'>}>"
        ).tail[0].pattern
        forest = [joe(), joe()]
        expected = [e.key() for e in match_pattern(pattern, forest[0])]
        compiled = compile_pattern(pattern)
        assert [e.key() for e in compiled.match(forest[0])] == expected


class TestCompiledRule:
    RULE = "<n N> :- <person {<name N>}>@s"

    def test_bit_for_bit_against_interpretive(self):
        rule = parse_rule(self.RULE)
        forests = {"s": [joe()], None: [joe()]}
        expected = evaluate_rule(
            rule, forests, oidgen=OidGenerator("&v"), check=False
        )
        observed = evaluate_rule_compiled(
            rule, forests, oidgen=OidGenerator("&v"), check=False
        )
        assert [repr(o) for o in observed] == [repr(o) for o in expected]

    def test_compile_rule_is_reusable(self):
        compiled = compile_rule(parse_rule(self.RULE))
        forests = {"s": [joe()], None: [joe()]}
        first = compiled.evaluate(forests, oidgen=OidGenerator("&v"))
        second = compiled.evaluate(forests, oidgen=OidGenerator("&v"))
        assert [repr(o) for o in first] == [repr(o) for o in second]


class TestCompileCache:
    def test_hits_and_misses(self):
        cache = CompileCache()
        rule = parse_rule("<n N> :- <person {<name N>}>@s")
        first = cache.rule(rule)
        assert cache.rule(rule) is first
        stats = cache.stats()
        assert stats["rules"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_pattern_cache_shared_across_equal_patterns(self):
        cache = CompileCache()
        pattern = parse_rule("<n N> :- <person {<name N>}>").tail[0].pattern
        assert cache.pattern(pattern) is cache.pattern(pattern)
        assert cache.stats()["patterns"] == 1

    def test_eviction_bounds_the_cache(self):
        cache = CompileCache(max_entries=2)
        for name in ("a", "b", "c"):
            cache.rule(parse_rule(f"<n N> :- <{name} {{<name N>}}>@s"))
        assert cache.stats()["rules"] == 2  # oldest evicted

    def test_returns_compiled_rule(self):
        cache = CompileCache()
        rule = parse_rule("<n N> :- <person {<name N>}>@s")
        assert isinstance(cache.rule(rule), CompiledRule)


class TestStructuralKeyMemoization:
    def test_second_dedup_recomputes_nothing(self):
        forest = [
            obj("p", atom("a", i), obj("q", atom("b", i % 2)))
            for i in range(20)
        ]
        eliminate_duplicates(forest)
        before = key_computations()
        eliminate_duplicates(forest)  # every key is already memoized
        assert key_computations() == before

    def test_memoized_key_is_the_computed_key(self):
        o = obj("p", atom("a", 1))
        assert structural_key(o) is structural_key(o)


class TestValueKeyBagSemantics:
    def test_rest_bindings_compare_order_insensitively(self):
        members = (atom("a", 1), atom("b", 2))
        assert value_key(members) == value_key(members[::-1])

    def test_duplicate_members_are_counted_not_collapsed(self):
        # a bag, not a set: {a, a} differs from {a}
        once = (atom("a", 1),)
        twice = (atom("a", 1), atom("a", 1))
        assert value_key(once) != value_key(twice)

    def test_structurally_equal_members_in_any_order(self):
        left = (atom("a", 1), atom("a", 1), atom("b", 2))
        right = (atom("b", 2), atom("a", 1), atom("a", 1))
        assert value_key(left) == value_key(right)


class TestPositionalTableFastPaths:
    def table(self):
        return BindingTable(["x", "y"], [(1, "a"), (2, "b"), (3, "c")])

    def test_filter_rows_sees_raw_tuples(self):
        table = self.table()
        pos = table.position("x")
        kept = table.filter_rows(lambda row: row[pos] > 1)
        assert kept.rows == [(2, "b"), (3, "c")]

    def test_filter_delegates_to_filter_rows(self):
        kept = self.table().filter(lambda row: row["y"] == "b")
        assert kept.rows == [(2, "b")]

    def test_extend_rows_sees_raw_tuples(self):
        table = self.table()
        pos = table.position("x")
        extended = table.extend_rows(
            ["double"], lambda row: [(row[pos] * 2,)]
        )
        assert extended.columns == ("x", "y", "double")
        assert extended.rows[0] == (1, "a", 2)

    def test_extend_rows_checks_arity(self):
        with pytest.raises(TableError):
            self.table().extend_rows(["d"], lambda row: [(1, 2)])

    def test_extend_rows_rejects_duplicate_columns(self):
        with pytest.raises(TableError):
            self.table().extend_rows(["x"], lambda row: [(1,)])


class TestProfiler:
    def test_records_accumulate(self):
        profiler = Profiler()
        profiler.record_node("FilterNode", 10, 0.5)
        profiler.record_node("FilterNode", 5, 0.25, latency=0.1)
        snap = profiler.snapshot()
        assert snap["nodes"]["FilterNode"] == {
            "calls": 2,
            "rows": 15,
            "seconds": 0.75,
            "source_seconds": 0.1,
        }

    def test_pattern_records(self):
        profiler = Profiler()
        profiler.record_pattern("<a A>", 100, 3, 0.1)
        snap = profiler.snapshot()
        assert snap["patterns"]["<a A>"]["objects"] == 100
        assert snap["patterns"]["<a A>"]["matches"] == 3

    def test_render_mentions_both_sections(self):
        profiler = Profiler()
        profiler.record_node("ExtractorNode", 1, 0.001)
        profiler.record_pattern("<a A>", 2, 1, 0.001)
        text = profiler.render()
        assert "plan nodes" in text
        assert "patterns" in text
        assert "ExtractorNode" in text

    def test_reset_clears_everything(self):
        profiler = Profiler()
        profiler.record_node("FilterNode", 1, 0.0)
        profiler.reset()
        assert profiler.snapshot() == {"nodes": {}, "patterns": {}}

"""Unit tests for unifiers and the view expander."""

import pytest

from repro.mediator import (
    ExpansionError,
    Unifier,
    ViewExpander,
    unify_with_head,
)
from repro.msl import (
    Const,
    PatternCondition,
    Var,
    parse_pattern,
    parse_query,
    parse_specification,
)


def unifiers(query_text, head_text, push_mode="complete"):
    return [
        u.finalized()
        for u in unify_with_head(
            parse_pattern(query_text), parse_pattern(head_text), push_mode
        )
    ]


HEAD = "<cs_person {<name N> <rel R> Rest1 Rest2}>"


class TestUnifyWithHead:
    def test_label_mismatch_no_unifier(self):
        assert unifiers("<other {}>", HEAD) == []

    def test_direct_item_match_maps_rule_var(self):
        results = unifiers("<cs_person {<name 'Joe Chung'>}>", HEAD, "needed")
        assert len(results) == 1
        assert results[0].mappings["N"] == Const("Joe Chung")

    def test_variable_to_variable_mapping(self):
        results = unifiers("<cs_person {<name X>}>", HEAD, "needed")
        assert results[0].mappings["X"] == Var("N")

    def test_push_into_both_set_vars(self):
        results = unifiers("<cs_person {<year 3>}>", HEAD)
        pushed = sorted(
            name for u in results for name in u.set_conditions
        )
        assert pushed == ["Rest1", "Rest2"]

    def test_complete_mode_also_pushes_matched_items(self):
        results = unifiers("<cs_person {<name 'J C'>}>", HEAD, "complete")
        assert len(results) == 3  # direct + Rest1 + Rest2

    def test_object_var_definition(self):
        results = unifiers("JC:<cs_person {<name 'Joe Chung'>}>", HEAD, "needed")
        definition = results[0].definitions["JC"]
        assert "cs_person" in str(definition)

    def test_query_rest_defines_leftovers(self):
        results = unifiers("<cs_person {<name X> | QR}>", HEAD, "needed")
        leftover = str(results[0].definitions["QR"])
        assert "rel" in leftover and "Rest1" in leftover and "Rest2" in leftover
        assert "name" not in leftover

    def test_value_var_against_braces_defined(self):
        results = unifiers("<cs_person V>", HEAD, "needed")
        assert "V" in results[0].definitions

    def test_constant_value_only_equal(self):
        assert unifiers("<a 'x'>", "<a 'x'>") != []
        assert unifiers("<a 'x'>", "<a 'y'>") == []

    def test_head_var_value_takes_query_constant(self):
        results = unifiers("<a 'x'>", "<a V>")
        assert results[0].mappings["V"] == Const("x")

    def test_inconsistent_joined_items_rejected(self):
        # the same rule variable cannot be both 'a' and 'b'
        results = unifiers("<p {<k 'a'> <l 'b'>}>", "<p {<k V> <l V>}>")
        assert results == []

    def test_consistent_joined_items_accepted(self):
        results = unifiers("<p {<k 'a'> <l 'a'>}>", "<p {<k V> <l V>}>")
        assert len(results) == 1

    def test_semantic_oid_head_matches_anonymous_query(self):
        results = unifiers(
            "<publication {<title 'X'>}>",
            "<&pub(T, Y) publication {<title T> <year Y>}>",
            "needed",
        )
        assert len(results) == 1
        assert results[0].mappings["T"] == Const("X")

    def test_two_query_items_same_head_item_injective(self):
        results = unifiers(
            "<p {<a X> <a Y>}>", "<p {<a V>}>", "needed"
        )
        assert results == []


class TestUnifierAlgebra:
    def test_map_var_conflict(self):
        u = Unifier()
        u1 = u.map_var("X", Const(1))
        assert u1.map_var("X", Const(2)) is None
        assert u1.map_var("X", Const(1)) is u1

    def test_transitive_union(self):
        u = Unifier().map_var("X", Var("Y"))
        u2 = u.map_var("X", Const(3))
        assert u2.resolve(Var("Y")) == Const(3)
        assert u2.resolve(Var("X")) == Const(3)

    def test_merge_conflicting(self):
        a = Unifier().map_var("X", Const(1))
        b = Unifier().map_var("X", Const(2))
        assert a.merge(b) is None

    def test_merge_accumulates_conditions(self):
        a = Unifier().push_condition("R", parse_pattern("<y 1>"))
        b = Unifier().push_condition("R", parse_pattern("<z 2>"))
        merged = a.merge(b)
        assert len(merged.set_conditions["R"]) == 2

    def test_str_contains_arrows(self):
        u = Unifier().map_var("N", Const("Joe"))
        u = u.define("JC", parse_pattern("<p {}>"))
        text = str(u)
        assert "->" in text and "=>" in text


SPEC = parse_specification(
    """
    <cs_person {<name N> <rel R> Rest1 Rest2}> :-
        <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
        AND decomp(N, LN, FN)
        AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    """
)


class TestViewExpander:
    def test_r2_reproduced(self):
        expander = ViewExpander("med", SPEC, push_mode="needed")
        program = expander.expand(
            parse_query("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
        )
        assert len(program) == 1
        rule_text = str(program.rules[0])
        assert "'Joe Chung'" in rule_text
        assert "@whois" in rule_text and "@cs" in rule_text

    def test_tau1_tau2(self):
        expander = ViewExpander("med", SPEC, push_mode="needed")
        program = expander.expand(parse_query(f"S :- S:<cs_person {{<year 3>}}>@med"))
        texts = [str(r) for r in program]
        assert len(texts) == 2
        assert any("Rest1_r1:{<year 3>}" in t for t in texts)
        assert any("Rest2_r1:{<year 3>}" in t for t in texts)

    def test_non_matching_label_yields_empty_program(self):
        expander = ViewExpander("med", SPEC)
        program = expander.expand(parse_query("X :- X:<professor {}>@med"))
        assert program.is_empty()

    def test_query_must_address_mediator(self):
        expander = ViewExpander("med", SPEC)
        with pytest.raises(ExpansionError, match="no condition addressed"):
            expander.expand(parse_query("X :- X:<person {}>@whois"))

    def test_passthrough_conditions_kept(self):
        expander = ViewExpander("med", SPEC, push_mode="needed")
        program = expander.expand(
            parse_query(
                "S :- S:<cs_person {<name X>}>@med AND upper(X, U) AND X != 'q'"
            )
        )
        rule = program.rules[0].rule
        kinds = [type(c).__name__ for c in rule.tail]
        assert "ExternalCall" in kinds and "Comparison" in kinds

    def test_multi_condition_query_merges(self):
        spec = parse_specification(
            "<a {<k K> <v V>}> :- <s {<k K> <v V>}>@src"
        )
        expander = ViewExpander("m", spec, push_mode="needed")
        program = expander.expand(
            parse_query("X Y :- X:<a {<k 'q'>}>@m AND Y:<a {<v 'w'>}>@m")
        )
        # each condition picks its own renamed rule instance
        assert len(program) == 1
        rule = program.rules[0].rule
        assert len(list(rule.pattern_conditions())) == 2

    def test_provenance_recorded(self):
        expander = ViewExpander("med", SPEC, push_mode="needed")
        program = expander.expand(
            parse_query("JC :- JC:<cs_person {<name 'Joe Chung'>}>@med")
        )
        assert program.rules[0].spec_rule_indexes == (0,)
        assert program.rules[0].unifier is not None

    def test_multiple_rules_union(self):
        spec = parse_specification(
            "<a {<x X>}> :- <s {<x X>}>@s1 ; <a {<x X>}> :- <t {<x X>}>@s2"
        )
        expander = ViewExpander("m", spec, push_mode="needed")
        program = expander.expand(parse_query("V :- V:<a {<x 'q'>}>@m"))
        assert len(program) == 2
        sources = {
            c.source
            for lr in program
            for c in lr.rule.pattern_conditions()
        }
        assert sources == {"s1", "s2"}

"""Unit tests for whole-plan operator fusion (repro.mediator.pipeline)
and the columnar key machinery in repro.mediator.tables that backs it."""

import math

import pytest

from repro.cli import main as cli_main
from repro.datasets import MS1
from repro.datasets.staff import MS1_FUSION
from repro.datasets.staff import build_scaled_scenario
from repro.mediator import (
    ExtractorNode,
    FilterNode,
    FusedPipelineNode,
    JoinNode,
    Mediator,
    PhysicalPlan,
    QueryNode,
    UnionNode,
    fuse_plan,
)
from repro.mediator.tables import BindingTable, key_array
from repro.msl.ast import Comparison, Const, PatternCondition, Var
from repro.msl.parser import parse_query, parse_specification
from repro.oem import OEMObject, atom
from repro.msl.bindings import value_key

FANOUT_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"


def plan_for(mediator, query):
    """The optimizer's plan for ``query``, before fusion."""
    program = mediator.expander.expand(parse_query(query))
    return mediator.optimizer.plan_program(program)


def scaled_mediator(**kwargs):
    return build_scaled_scenario(12, push_mode="needed", **kwargs).mediator


class TestFusePlan:
    def test_heuristic_chain_fuses_whole_pipeline(self):
        mediator = scaled_mediator()
        plan = plan_for(mediator, FANOUT_QUERY)
        unfused_names = [type(n).__name__ for n in plan.nodes()]
        fused, decisions = fuse_plan(plan)
        root = fused.root
        assert isinstance(root, FusedPipelineNode)
        # everything downstream of the source scan collapses into one
        # pipeline: Extract => ExternalPred => ParamQuery => Extract
        # => Construct
        assert [type(n).__name__ for n in root.nodes] == unfused_names[1:]
        assert root.fusion_width == len(root.nodes)
        (query_node,) = root.inputs
        assert isinstance(query_node, QueryNode)
        fused_decisions = [d for d in decisions if d.fused]
        assert len(fused_decisions) == 1
        assert fused_decisions[0].render().startswith("+ fused")
        assert " => ".join(fused_decisions[0].nodes) in root.describe()

    def test_stage_accounting_is_fusion_invariant(self):
        mediator = scaled_mediator()
        plan = plan_for(mediator, FANOUT_QUERY)
        depth_before = plan.depth()
        starts_before = [number for number, _ in plan.stage_starts()]
        fused, _ = fuse_plan(plan_for(mediator, FANOUT_QUERY))
        assert fused.depth() == depth_before
        assert starts_before == list(range(1, depth_before + 1))
        # the fused node takes its first constituent's stage number and
        # spans the same range the constituents did
        numbers = dict(
            (type(group[0]).__name__, number)
            for number, group in fused.stage_starts()
        )
        assert numbers["QueryNode"] == 1
        assert numbers["FusedPipelineNode"] == 2

    def test_union_is_a_barrier_each_branch_fuses(self):
        # MS1_FUSION defines cs_person by two rules (one per source),
        # so the plan is a UnionNode of two straight-line branches
        scenario = build_scaled_scenario(12, push_mode="needed")
        mediator = Mediator(
            "med",
            MS1_FUSION,
            scenario.registry,
            scenario.externals,
            push_mode="needed",
            register=False,
        )
        plan = plan_for(mediator, FANOUT_QUERY)
        fused, _ = fuse_plan(plan)
        root = fused.root
        assert isinstance(root, UnionNode)
        assert len(root.inputs) == 2
        assert all(
            isinstance(branch, FusedPipelineNode) for branch in root.inputs
        )

    def test_fetch_all_join_is_a_barrier(self):
        mediator = scaled_mediator(strategy="fetch_all")
        fused, _ = fuse_plan(plan_for(mediator, FANOUT_QUERY))
        names = [type(n).__name__ for n in fused.nodes()]
        assert "JoinNode" in names
        assert "FusedPipelineNode" in names

    def test_fan_out_is_a_barrier(self):
        """A node with two consumers ends the chain; the consumers stay
        single operators and are rewired onto the fused producer."""
        rule = parse_specification(MS1).rules[0]
        pattern = next(
            c.pattern for c in rule.tail if isinstance(c, PatternCondition)
        )
        query = QueryNode("whois", rule)
        extract = ExtractorNode(query, pattern, ("N",))
        shared = FilterNode(extract, Comparison(Var("N"), "!=", Const("x")))
        left = FilterNode(shared, Comparison(Var("N"), "!=", Const("y")))
        right = FilterNode(shared, Comparison(Var("N"), "!=", Const("z")))
        fused, decisions = fuse_plan(PhysicalPlan(JoinNode(left, right)))
        pipelines = [
            n for n in fused.nodes() if isinstance(n, FusedPipelineNode)
        ]
        assert len(pipelines) == 1
        assert [type(n).__name__ for n in pipelines[0].nodes] == [
            "ExtractorNode",
            "FilterNode",
        ]
        # both branches now read from the same fused producer
        assert left.inputs[0] is pipelines[0]
        assert right.inputs[0] is pipelines[0]
        reasons = [d.reason for d in decisions if not d.fused]
        assert any("fans out to 2" in reason for reason in reasons)

    def test_plan_without_chains_is_returned_unchanged(self):
        rule = parse_specification(MS1).rules[0]
        plan = PhysicalPlan(QueryNode("whois", rule))
        fused, decisions = fuse_plan(plan)
        assert fused is plan
        assert decisions == []


class TestMediatorSurface:
    def test_explain_reports_decisions(self):
        mediator = scaled_mediator()
        text = mediator.explain(FANOUT_QUERY)
        assert "-- operator fusion --" in text
        assert "pipeline [" in text
        assert "+ fused" in text

    def test_fuse_false_reverts_to_reference_path(self):
        scenario = build_scaled_scenario(12, push_mode="needed")
        mediator = Mediator(
            "med",
            scenario.mediator.specification,
            scenario.registry,
            scenario.externals,
            push_mode="needed",
            register=False,
            fuse=False,
        )
        assert "-- operator fusion --" not in mediator.explain(FANOUT_QUERY)
        mediator.query(FANOUT_QUERY)
        assert mediator.last_fusion == []
        assert "fusion" not in mediator.profiler.snapshot()

    def test_trace_mode_disables_fusion(self):
        """Figure 3.6 replay needs one table per operator, so tracing
        implies the unfused reference path even with fuse=True."""
        mediator = scaled_mediator(trace=True)
        assert mediator.fuse
        mediator.query(FANOUT_QUERY)
        assert mediator.last_fusion == []
        traced = [type(e.node).__name__ for e in mediator.engine.last_trace]
        assert "FusedPipelineNode" not in traced
        assert "ExtractorNode" in traced
        assert "-- operator fusion --" not in mediator.explain(FANOUT_QUERY)

    def test_fused_profile_attributes_constituents(self):
        mediator = scaled_mediator()
        mediator.query(FANOUT_QUERY)
        snap = mediator.profiler.snapshot()
        assert snap["fusion"]["chains"] >= 1
        assert snap["fusion"]["operators"] >= 2
        for name in ("ExtractorNode", "ConstructorNode", "FusedPipelineNode"):
            assert name in snap["nodes"]
        assert "operator fusion:" in mediator.profiler.render()


SPEC = """
<cs_person {<name N> <rel R> | Rest1}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois ;
"""

WHOIS = """
<&p1, person, set, {&n1,&d1,&rel1}>
  <&n1, name, string, 'Joe Chung'>
  <&d1, dept, string, 'CS'>
  <&rel1, relation, string, 'employee'>
;
"""


class TestCLIFlag:
    def test_no_fuse_gives_same_answers(self, tmp_path):
        import io

        spec = tmp_path / "med.msl"
        spec.write_text(SPEC)
        whois = tmp_path / "whois.oem"
        whois.write_text(WHOIS)
        argv = [
            "--spec", str(spec),
            "--source", f"whois={whois}",
            "--query", "X :- X:<cs_person {<name 'Joe Chung'>}>@med",
            "--format", "inline",
        ]
        outputs = []
        for extra in ([], ["--no-fuse"]):
            stdout, stderr = io.StringIO(), io.StringIO()
            status = cli_main(
                argv + extra, stdout=stdout, stderr=stderr,
                stdin=io.StringIO(""),
            )
            assert status == 0, stderr.getvalue()
            outputs.append(stdout.getvalue())
        assert outputs[0] == outputs[1]
        assert "'Joe Chung'" in outputs[0]


def reference_join(left, right):
    """Nested-loop natural join on ``value_key`` equality — the
    semantics the columnar hash join must reproduce.  (The historical
    implementation bucketed rows by ``value_key`` before verifying, so
    key equality *is* the join predicate.)"""
    shared = [c for c in left.columns if c in right.columns]
    out_columns = list(left.columns) + [
        c for c in right.columns if c not in shared
    ]
    extra = [right.position(c) for c in right.columns if c not in shared]
    pairs = [(left.position(c), right.position(c)) for c in shared]
    rows = []
    for lrow in left.rows:
        for rrow in right.rows:
            if all(
                value_key(lrow[lp]) == value_key(rrow[rp])
                for lp, rp in pairs
            ):
                rows.append(lrow + tuple(rrow[p] for p in extra))
    return out_columns, rows


MIXED = [
    "x",
    1,
    True,
    1.0,
    None,
    # set bindings are tuples of OEM objects
    (atom("name", "Joe"), atom("name", "Sue")),
    OEMObject("person", [atom("name", "Joe")], "set", "&p1"),
]


class TestColumnarTables:
    def test_key_array_exact_fast_path(self):
        keys, is_exact = key_array(["a", "b", "a"])
        assert is_exact
        assert keys == ["a", "b", "a"]
        keys, is_exact = key_array(["a", 1])
        assert not is_exact
        assert keys[0] != keys[1]

    @pytest.mark.parametrize("swap", [False, True])
    def test_join_matches_reference_on_mixed_types(self, swap):
        left = BindingTable(("X", "L"))
        for i, value in enumerate(MIXED + ["x", 1]):
            left.append((value, f"l{i}"))
        right = BindingTable(("X", "R"))
        for i, value in enumerate(reversed(MIXED)):
            right.append((value, f"r{i}"))
        if swap:
            left, right = right, left
        expected_columns, expected_rows = reference_join(left, right)
        joined = left.natural_join(right)
        assert list(joined.columns) == expected_columns
        assert sorted(map(repr, joined.rows)) == sorted(
            map(repr, expected_rows)
        )

    def test_join_does_not_conflate_bool_and_int(self):
        left = BindingTable(("X",))
        left.append((1,))
        left.append((True,))
        right = BindingTable(("X", "Y"))
        right.append((True, "t"))
        joined = left.natural_join(right)
        assert joined.rows == [(True, "t")]

    def test_join_lifts_exact_column_against_canonical(self):
        """All-str columns hash raw strings; joined against a mixed
        column they must be lifted to canonical keys, not mismatched."""
        exact_side = BindingTable(("X",))
        for value in ("a", "b", "c"):
            exact_side.append((value,))
        mixed_side = BindingTable(("X", "Y"))
        mixed_side.append(("b", 1))
        mixed_side.append((2, "two"))
        joined = exact_side.natural_join(mixed_side)
        assert joined.rows == [("b", 1)]

    def test_join_nan_matches_itself(self):
        nan = float("nan")
        left = BindingTable(("X",))
        left.append((nan,))
        right = BindingTable(("X", "Y"))
        right.append((nan, "hit"))
        right.append((math.inf, "miss"))
        joined = left.natural_join(right)
        assert [row[1] for row in joined.rows] == ["hit"]

    def test_distinct_on_mixed_types(self):
        table = BindingTable(("X", "Y"))
        for row in [
            (1, "a"), (True, "a"), (1, "a"), ("1", "a"), (1.0, "a"),
        ]:
            table.append(row)
        kept = table.distinct().rows
        # int, bool, str, and float ones are four distinct atoms;
        # only the duplicate (1, "a") collapses
        assert kept == [(1, "a"), (True, "a"), ("1", "a"), (1.0, "a")]

    def test_key_cache_tracks_appends(self):
        """Memoized key columns must refresh after new rows arrive."""
        table = BindingTable(("X",))
        table.append(("a",))
        keys, _ = table.key_column(0)
        assert len(keys) == 1
        table.append(("b",))
        keys, _ = table.key_column(0)
        assert len(keys) == 2
        probe = BindingTable(("X", "Y"))
        probe.append(("b", "y"))
        assert table.natural_join(probe).rows == [("b", "y")]


class TestCompiledHeadInstantiation:
    """compile_head_item lowers rule heads to row closures; its output
    must be bit-for-bit what instantiate_head_item builds from the same
    bindings — same labels/types/values, same oid-generator ticks in
    the same order, same errors — and unsupported shapes must decline
    (return None) rather than approximate."""

    # (head text, columns, row) — each row position binds the column name
    CASES = [
        ("<hit {<name N> <year Y>}>", ("N", "Y"), ("Joe", 1995)),
        ("<hit {<name N>}>", ("N",), (None,)),  # null atom child
        ("<hit {<a 'x'> <b 3> <c 2.5> <d 'y'>}>", (), ()),
        ("<hit N>", ("N",), ("Joe",)),  # atom value slot
        ("<&person(N) hit {<name N>}>", ("N",), ("Sue",)),  # semantic oid
        ("<&fixed hit {<name N>}>", ("N",), ("Joe",)),  # constant oid
    ]

    @staticmethod
    def build_head(text):
        spec = parse_specification(f"{text} :- <person {{<name N>}}>@s ;")
        return spec.rules[0].head

    @pytest.mark.parametrize("text,columns,row", CASES)
    def test_matches_interpretive(self, text, columns, row):
        from repro.msl.bindings import Bindings
        from repro.msl.compile import compile_head_item
        from repro.msl.substitute import instantiate_head_item
        from repro.oem.oid import OidGenerator

        for item in self.build_head(text):
            build = compile_head_item(item, columns)
            assert build is not None, f"declined {item}"
            gen_a, gen_b = OidGenerator("&v"), OidGenerator("&v")
            compiled = build(row, gen_a)
            env = Bindings(dict(zip(columns, row)))
            reference = instantiate_head_item(item, env, gen_b)
            assert [repr(o) for o in compiled] == [
                repr(o) for o in reference
            ]
            # generators ticked in lockstep (same number of fresh oids)
            assert repr(gen_a()) == repr(gen_b())

    def test_bare_head_variable(self):
        from repro.msl.compile import compile_head_item

        item = parse_query("S :- S:<person {<name N>}>@s").head[0]
        build = compile_head_item(item, ("N", "S"))
        obj = OEMObject("person", [atom("name", "Joe")], "set", "&p1")
        assert build(("Joe", obj), None) == [obj]
        rest = (atom("a", 1), atom("b", 2))
        assert build(("Joe", rest), None) == list(rest)

    def test_splice_and_rest_in_head(self):
        """'{<name N> | R}' head: R's members spliced, duplicates
        eliminated, oids identical to the interpretive builder."""
        from repro.msl.bindings import Bindings
        from repro.msl.compile import compile_head_item
        from repro.msl.substitute import instantiate_head_item
        from repro.oem.oid import OidGenerator

        (item,) = self.build_head("<hit {<name N> | R}>")
        columns = ("N", "R")
        rest = (atom("year", 1995), atom("year", 1995), atom("dept", "CS"))
        row = ("Joe", rest)
        build = compile_head_item(item, columns)
        assert build is not None
        compiled = build(row, OidGenerator("&v"))
        reference = instantiate_head_item(
            item, Bindings(dict(zip(columns, row))), OidGenerator("&v")
        )
        assert [repr(o) for o in compiled] == [repr(o) for o in reference]

    def test_unsupported_shapes_decline(self):
        from repro.msl.compile import compile_head_item

        # variable outside the row layout: fallback, not a KeyError
        (item,) = self.build_head("<hit {<name N>}>")
        assert compile_head_item(item, ("OTHER",)) is None

    def test_atom_errors_match_interpretive(self):
        from repro.msl.bindings import Bindings
        from repro.msl.compile import compile_head_item
        from repro.msl.errors import MSLInstantiationError
        from repro.msl.substitute import instantiate_head_item

        item = parse_query("S :- S:<person {<name N>}>@s").head[0]
        build = compile_head_item(item, ("N", "S"))
        row = ("Joe", 42)  # head variable bound to an atom
        with pytest.raises(MSLInstantiationError) as compiled_err:
            build(row, None)
        with pytest.raises(MSLInstantiationError) as reference_err:
            instantiate_head_item(
                item, Bindings({"N": "Joe", "S": 42}), None
            )
        assert str(compiled_err.value) == str(reference_err.value)

"""Unit tests for datasets, unparse, and miscellaneous corners."""

import pytest

from repro.datasets import (
    LABELS,
    build_bibliography,
    build_scaled_scenario,
    build_scenario,
    deep_object,
    normalize_author,
    random_forest,
    record_forest,
)
from repro.msl import (
    format_rule,
    format_rules,
    format_specification,
    parse_rule,
    parse_specification,
)
from repro.oem import count_objects, depth, walk


class TestGenerators:
    def test_record_forest_size_and_shape(self):
        forest = record_forest(25)
        assert len(forest) == 25
        assert all(o.label == "person" for o in forest)

    def test_record_forest_regular_without_irregularity(self):
        forest = record_forest(10, irregular_fraction=0.0)
        shapes = {tuple(c.label for c in o.children) for o in forest}
        assert len(shapes) == 1

    def test_record_forest_irregular(self):
        forest = record_forest(60, irregular_fraction=1.0, seed=1)
        shapes = {tuple(sorted(c.label for c in o.children)) for o in forest}
        assert len(shapes) > 1
        assert any(
            o.first("extra") is not None for o in forest
        )

    def test_record_forest_deterministic(self):
        from repro.oem import structural_key

        a = record_forest(10, seed=9)
        b = record_forest(10, seed=9)
        assert [structural_key(x) for x in a] == [
            structural_key(y) for y in b
        ]

    def test_deep_object_depth_and_fanout(self):
        o = deep_object(6, fanout=3)
        assert depth(o) == 6
        assert len(o.children) == 3

    def test_deep_object_unique_leaf(self):
        o = deep_object(5, fanout=2, leaf_label="goal")
        found = [n for n in walk([o]) if n.label == "goal"]
        assert len(found) == 1

    def test_random_forest_bounded(self):
        forest = random_forest(20, max_depth=3, seed=2)
        assert len(forest) == 20
        assert all(depth(o) <= 3 for o in forest)
        assert all(o.label in LABELS for o in forest)

    def test_random_forest_deterministic(self):
        from repro.oem import structural_key

        assert [structural_key(x) for x in random_forest(5, seed=4)] == [
            structural_key(y) for y in random_forest(5, seed=4)
        ]


class TestScaledScenario:
    def test_sizes(self):
        scenario = build_scaled_scenario(30, seed=6)
        assert len(scenario.whois) == 30
        in_cs = sum(len(t) for t in scenario.cs.database.tables())
        assert 0 < in_cs <= 30

    def test_names_unique(self):
        scenario = build_scaled_scenario(40, seed=6)
        names = [o.get("name") for o in scenario.whois.export()]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        from repro.oem import structural_key

        a = build_scaled_scenario(15, seed=8)
        b = build_scaled_scenario(15, seed=8)
        assert [structural_key(o) for o in a.whois.export()] == [
            structural_key(o) for o in b.whois.export()
        ]

    def test_view_size_tracks_match_fraction(self):
        high = build_scaled_scenario(40, seed=2, match_fraction=1.0)
        low = build_scaled_scenario(40, seed=2, match_fraction=0.3)
        assert len(high.mediator.export()) > len(low.mediator.export())


class TestNormalizeAuthor:
    def test_first_last(self):
        assert normalize_author("Gio Wiederhold") == [("Wiederhold, Gio",)]

    def test_already_normalised_idempotent(self):
        assert normalize_author("Wiederhold, Gio") == [("Wiederhold, Gio",)]

    def test_single_word_passes_through(self):
        assert normalize_author("Prince") == [("Prince",)]

    def test_garbage_fails(self):
        assert normalize_author("") == []
        assert normalize_author(None) == []
        assert normalize_author(",") == []


class TestBibliographyBuild:
    def test_overlap_zero(self):
        scenario = build_bibliography(papers=10, overlap_fraction=0.0, seed=1)
        dept = {r[0] for r in scenario.deptbib.database.table("paper")}
        web = {o.get("title") for o in scenario.webbib.export()}
        assert not dept & web

    def test_overlap_full(self):
        scenario = build_bibliography(papers=10, overlap_fraction=1.0, seed=1)
        dept = {r[0] for r in scenario.deptbib.database.table("paper")}
        web = {o.get("title") for o in scenario.webbib.export()}
        assert dept == web


class TestUnparse:
    def test_format_rule_layout(self):
        rule = parse_rule("<a X> :- <b X>@s AND <c X>@t AND X > 1")
        text = format_rule(rule)
        lines = text.splitlines()
        assert lines[0].endswith(":-")
        assert lines[1].strip() == "<b X>@s"
        assert lines[2].strip().startswith("AND")
        assert len(lines) == 4

    def test_format_rules_blank_line_separated(self):
        rules = [parse_rule("<a X> :- <b X>@s")] * 2
        assert format_rules(rules).count("\n\n") == 1

    def test_format_specification_includes_externals(self):
        spec = parse_specification(
            "<a X> :- <b X>@s ; EXT f(bound, free) BY to_upper"
        )
        text = format_specification(spec)
        assert "EXT f(bound, free) BY to_upper" in text

    def test_formatted_rule_reparses(self):
        rule = parse_rule(
            "<cs_person {<name N> | R}> :- <p {<name N> | R}>@w AND f(N, U)"
        )
        again = parse_rule(format_rule(rule))
        assert str(again) == str(rule)


class TestScenarioOptions:
    def test_strategy_option_propagates(self):
        scenario = build_scenario(strategy="fetch_all")
        assert scenario.mediator.optimizer.strategy == "fetch_all"

    def test_trace_option_propagates(self):
        scenario = build_scenario(trace=True)
        assert scenario.mediator.engine.trace_enabled

"""Unit tests for the external predicate registry and standard functions."""

import pytest

from repro.external import (
    ExternalFunctionError,
    ExternalRegistry,
    check_name_lnfn,
    concat,
    default_registry,
    lnfn_to_name,
    name_to_lnfn,
    split_at,
    add,
    to_lower,
    to_upper,
)


class TestStandardFunctions:
    def test_name_to_lnfn(self):
        assert name_to_lnfn("Joe Chung") == [("Chung", "Joe")]

    def test_name_to_lnfn_middle_parts_stay_with_first(self):
        assert name_to_lnfn("Mary Jo Frost") == [("Frost", "Mary Jo")]

    def test_name_to_lnfn_unsplittable(self):
        assert name_to_lnfn("Prince") == []
        assert name_to_lnfn("") == []
        assert name_to_lnfn(42) == []

    def test_lnfn_to_name(self):
        assert lnfn_to_name("Chung", "Joe") == [("Joe Chung",)]

    def test_lnfn_to_name_invalid(self):
        assert lnfn_to_name("", "Joe") == []
        assert lnfn_to_name(3, "Joe") == []

    def test_roundtrip(self):
        ((last, first),) = name_to_lnfn("Joe Chung")
        assert lnfn_to_name(last, first) == [("Joe Chung",)]

    def test_check_name_lnfn(self):
        assert check_name_lnfn("Joe Chung", "Chung", "Joe")
        assert not check_name_lnfn("Joe Chung", "Joe", "Chung")

    def test_case_functions(self):
        assert to_upper("abc") == [("ABC",)]
        assert to_lower("ABC") == [("abc",)]
        assert to_upper(3) == []

    def test_concat(self):
        assert concat("a", "b") == [("ab",)]

    def test_split_at(self):
        assert split_at("user@host", "@") == [("user", "host")]
        assert split_at("nothing", "@") == []

    def test_add(self):
        assert add(2, 3) == [(5,)]
        assert add(True, 1) == []
        assert add("2", 3) == []


class TestRegistry:
    def test_register_and_lookup(self):
        registry = ExternalRegistry()
        registry.register_function("f", lambda x: [(x,)])
        assert registry.has_function("f")
        assert registry.function("f")(1) == [(1,)]

    def test_duplicate_function_rejected(self):
        registry = ExternalRegistry()
        registry.register_function("f", lambda: True)
        with pytest.raises(ExternalFunctionError, match="already"):
            registry.register_function("f", lambda: False)

    def test_unknown_function(self):
        with pytest.raises(ExternalFunctionError, match="no registered"):
            ExternalRegistry().function("ghost")

    def test_declare_requires_function(self):
        with pytest.raises(ExternalFunctionError):
            ExternalRegistry().declare("p", ("b", "f"), "ghost")

    def test_select_by_availability(self):
        registry = default_registry()
        registry.declare("decomp", ("b", "f", "f"), "name_to_lnfn")
        registry.declare("decomp", ("f", "b", "b"), "lnfn_to_name")
        impl = registry.select("decomp", [True, False, False])
        assert impl.function_name == "name_to_lnfn"
        impl = registry.select("decomp", [False, True, True])
        assert impl.function_name == "lnfn_to_name"

    def test_select_prefers_most_specific(self):
        registry = default_registry()
        registry.declare("decomp", ("b", "f", "f"), "name_to_lnfn")
        registry.declare("decomp", ("b", "b", "b"), "check_name_lnfn")
        impl = registry.select("decomp", [True, True, True])
        assert impl.function_name == "check_name_lnfn"

    def test_select_no_fit(self):
        registry = default_registry()
        registry.declare("decomp", ("b", "f", "f"), "name_to_lnfn")
        with pytest.raises(ExternalFunctionError, match="no implementation"):
            registry.select("decomp", [False, True, True])

    def test_evaluate_binds_free(self):
        registry = default_registry()
        registry.declare("decomp", ("b", "f", "f"), "name_to_lnfn")
        rows = list(
            registry.evaluate(
                "decomp", ["Joe Chung", None, None], [True, False, False]
            )
        )
        assert rows == [("Joe Chung", "Chung", "Joe")]

    def test_evaluate_postfilters_bound_free_args(self):
        registry = default_registry()
        registry.declare("decomp", ("b", "f", "f"), "name_to_lnfn")
        rows = list(
            registry.evaluate(
                "decomp",
                ["Joe Chung", "Wrong", None],
                [True, True, False],
            )
        )
        assert rows == []

    def test_evaluate_fully_bound_check(self):
        registry = default_registry()
        registry.declare("decomp", ("b", "b", "b"), "check_name_lnfn")
        rows = list(
            registry.evaluate(
                "decomp",
                ["Joe Chung", "Chung", "Joe"],
                [True, True, True],
            )
        )
        assert rows == [("Joe Chung", "Chung", "Joe")]

    def test_copy_is_independent(self):
        registry = default_registry()
        registry.declare("decomp", ("b", "f", "f"), "name_to_lnfn")
        clone = registry.copy()
        clone.declare("decomp", ("f", "b", "b"), "lnfn_to_name")
        assert len(registry.implementations("decomp")) == 1
        assert len(clone.implementations("decomp")) == 2

    def test_misbehaving_function_wrapped(self):
        registry = ExternalRegistry()

        def boom(x):
            raise RuntimeError("bad")

        registry.register_function("boom", boom)
        registry.declare("p", ("b", "f"), "boom")
        with pytest.raises(ExternalFunctionError, match="raised"):
            list(registry.evaluate("p", [1, None], [True, False]))

    def test_wrong_arity_result_rejected(self):
        registry = ExternalRegistry()
        registry.register_function("bad", lambda x: [(1, 2)])
        registry.declare("p", ("b", "f"), "bad")
        with pytest.raises(ExternalFunctionError, match="arity"):
            list(registry.evaluate("p", [1, None], [True, False]))

    def test_single_atom_result_normalised(self):
        registry = ExternalRegistry()
        registry.register_function("inc", lambda x: x + 1)
        registry.declare("p", ("b", "f"), "inc")
        rows = list(registry.evaluate("p", [1, None], [True, False]))
        assert rows == [(1, 2)]

    def test_none_result_means_failure(self):
        registry = ExternalRegistry()
        registry.register_function("no", lambda x: None)
        registry.declare("p", ("b", "f"), "no")
        assert list(registry.evaluate("p", [1, None], [True, False])) == []

    def test_bool_required_for_fully_bound(self):
        registry = ExternalRegistry()
        registry.register_function("odd", lambda x: "yes")
        registry.declare("p", ("b",), "odd")
        with pytest.raises(ExternalFunctionError, match="bool"):
            list(registry.evaluate("p", [1], [True]))

    def test_default_registry_has_standard_functions(self):
        registry = default_registry()
        for name in ("name_to_lnfn", "lnfn_to_name", "to_upper", "concat"):
            assert registry.has_function(name)

"""Unit tests for tail-latency resilience: deadline slicing, adaptive
timeouts, hedged requests, full-jitter backoff, and the single-probe
half-open breaker.

Deterministic where the machinery allows it (ManualClock, seeded RNGs);
the hedge-race tests use real threads with event-gated stalls, so they
wait on explicit signals, never on wall-clock sleeps of guessed length.
"""

import contextvars
import random
import threading

import pytest

from repro.datasets import build_scaled_scenario
from repro.exec.cache import AnswerCache
from repro.exec.dispatcher import SourceDispatcher
from repro.governor.budget import (
    CancellationToken,
    QueryBudget,
    QueryCancelled,
    QueryGovernor,
)
from repro.mediator import Mediator, MediatorError
from repro.oem import OEMObject, parse_oem, structural_key
from repro.reliability import (
    AdaptiveTimeoutConfig,
    AdaptiveTimeoutPolicy,
    CircuitBreaker,
    DeadlineSlicer,
    FaultInjectingSource,
    HALF_OPEN,
    HealthRegistry,
    HedgeAbandoned,
    HedgeCoordinator,
    HedgePolicy,
    LatencyTracker,
    ManualClock,
    OPEN,
    ResilienceConfig,
    ResilienceManager,
    ResilientSource,
    RetryPolicy,
    SourceTimeoutError,
    SourceUnavailable,
    TransientSourceError,
    call_allowance_scope,
    current_call_allowance,
    current_hedge_role,
)
from repro.wrappers import OEMStoreWrapper, SourceRegistry
from repro.wrappers.base import Source

PEOPLE = """
<&x1, rec, set, {&a1}>
  <&a1, name, string, 'Ann'>
;
"""

FANOUT_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"


def make_wrapper(name="src"):
    return OEMStoreWrapper(name, parse_oem(PEOPLE))


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


# -- latency tracking and adaptive timeouts -------------------------------


class TestLatencyTracker:
    def test_quantiles_match_nearest_rank(self):
        tracker = LatencyTracker()
        for value in (0.01, 0.02, 0.03, 0.04, 0.10):
            tracker.observe("s", value)
        assert tracker.quantile("s", 0.5) == 0.03
        assert tracker.quantile("s", 1.0) == 0.10
        assert tracker.quantile("s", 0.0) == 0.01

    def test_cold_window_returns_none(self):
        tracker = LatencyTracker()
        assert tracker.quantile("s", 0.95) is None
        tracker.observe("s", 0.01)
        assert tracker.quantile("s", 0.95, min_samples=2) is None
        assert tracker.quantile("s", 0.95) == 0.01

    def test_window_slides(self):
        tracker = LatencyTracker(window=4)
        for value in (1.0, 1.0, 1.0, 1.0, 0.1, 0.1, 0.1, 0.1):
            tracker.observe("s", value)
        assert tracker.count("s") == 4
        assert tracker.quantile("s", 1.0) == 0.1

    def test_sources_are_independent(self):
        tracker = LatencyTracker()
        tracker.observe("a", 1.0)
        tracker.observe("b", 2.0)
        assert tracker.quantile("a", 0.5) == 1.0
        assert tracker.quantile("b", 0.5) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyTracker(window=0)
        with pytest.raises(ValueError):
            LatencyTracker().quantile("s", 1.5)


class TestAdaptiveTimeoutConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            AdaptiveTimeoutConfig(quantile=1.5)
        with pytest.raises(ValueError):
            AdaptiveTimeoutConfig(multiplier=0)
        with pytest.raises(ValueError):
            AdaptiveTimeoutConfig(min_timeout=0)
        with pytest.raises(ValueError):
            AdaptiveTimeoutConfig(min_samples=0)


class TestAdaptiveTimeoutPolicy:
    def test_cold_policy_abstains(self):
        policy = AdaptiveTimeoutPolicy()
        assert policy.timeout_for("s") is None

    def test_warm_timeout_is_multiplier_times_quantile(self):
        policy = AdaptiveTimeoutPolicy(
            AdaptiveTimeoutConfig(quantile=1.0, multiplier=3.0,
                                  min_samples=2)
        )
        policy.observe("s", 0.010)
        assert policy.timeout_for("s") is None  # still cold
        policy.observe("s", 0.020)
        assert policy.timeout_for("s") == pytest.approx(0.060)

    def test_health_registry_window_is_preferred(self):
        health = HealthRegistry()
        policy = AdaptiveTimeoutPolicy(
            AdaptiveTimeoutConfig(quantile=1.0, multiplier=2.0,
                                  min_samples=1),
            health=health,
        )
        policy.observe("s", 5.0)  # own tracker: would give 10s
        health.record_attempt("s")
        health.record_success("s", 0.25)
        assert policy.timeout_for("s") == pytest.approx(0.5)

    def test_floor_applies(self):
        policy = AdaptiveTimeoutPolicy(
            AdaptiveTimeoutConfig(quantile=1.0, multiplier=1.0,
                                  min_timeout=0.5, min_samples=1)
        )
        policy.observe("s", 0.001)
        assert policy.timeout_for("s") == 0.5

    def test_describe_mentions_the_knobs(self):
        text = AdaptiveTimeoutPolicy().describe()
        assert "adaptive timeouts" in text
        assert "p99" in text


# -- deadline slicing ------------------------------------------------------


def make_governor(deadline, clock):
    governor = QueryGovernor(
        budget=QueryBudget(deadline=deadline), clock=clock
    )
    governor.start()
    return governor


class TestDeadlineSlicer:
    def test_needs_a_deadline(self):
        with pytest.raises(ValueError):
            DeadlineSlicer(QueryGovernor(clock=ManualClock()))

    def test_even_split_across_stages(self):
        clock = ManualClock()
        slicer = DeadlineSlicer(make_governor(12.0, clock))
        slicer.begin_plan(3)
        assert slicer.stage_allowance() == pytest.approx(4.0)
        clock.advance(2.0)
        slicer.enter_stage(2)
        # 10s left over stages 2 and 3
        assert slicer.stage_allowance() == pytest.approx(5.0)
        slicer.enter_stage(3)
        clock.advance(7.0)
        assert slicer.stage_allowance() == pytest.approx(3.0)

    def test_stage_progress_is_monotonic(self):
        slicer = DeadlineSlicer(make_governor(10.0, ManualClock()))
        slicer.begin_plan(4)
        slicer.enter_stage(3)
        slicer.enter_stage(1)  # a DFS revisit must not move back
        assert slicer.stages_left() == 2
        slicer.enter_stage(99)  # clamped to the announced plan
        assert slicer.stages_left() == 1

    def test_remaining_never_negative(self):
        clock = ManualClock()
        slicer = DeadlineSlicer(make_governor(1.0, clock))
        clock.advance(5.0)
        assert slicer.remaining() == 0.0
        assert slicer.call_allowance("s") == slicer.min_allowance

    def test_adaptive_timeout_caps_the_stage_share(self):
        adaptive = AdaptiveTimeoutPolicy(
            AdaptiveTimeoutConfig(quantile=1.0, multiplier=2.0,
                                  min_samples=1)
        )
        adaptive.observe("fast", 0.05)
        slicer = DeadlineSlicer(
            make_governor(10.0, ManualClock()), adaptive=adaptive
        )
        slicer.begin_plan(2)  # stage share: 5s
        assert slicer.call_allowance("fast") == pytest.approx(0.1)
        assert slicer.call_allowance("cold") == pytest.approx(5.0)

    def test_describe(self):
        slicer = DeadlineSlicer(make_governor(10.0, ManualClock()))
        assert "deadline slicing" in slicer.describe()


class TestCallAllowanceScope:
    def test_scope_sets_and_restores(self):
        assert current_call_allowance() is None
        with call_allowance_scope(1.5):
            assert current_call_allowance() == 1.5
            with call_allowance_scope(0.5):
                assert current_call_allowance() == 0.5
            assert current_call_allowance() == 1.5
        assert current_call_allowance() is None

    def test_allowance_travels_with_copied_context(self):
        seen = []
        with call_allowance_scope(2.0):
            context = contextvars.copy_context()
        context.run(lambda: seen.append(current_call_allowance()))
        assert seen == [2.0]


# -- full-jitter backoff ---------------------------------------------------


class TestFullJitter:
    def test_full_jitter_samples_the_whole_range(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0,
                             jitter_mode="full")
        rng = random.Random(7)
        delays = [policy.delay(2, rng) for _ in range(200)]
        assert all(0.0 <= d <= 2.0 for d in delays)
        assert min(delays) < 0.5  # the range really is [0, delay]
        assert max(delays) > 1.5

    def test_full_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(jitter_mode="full")
        a = [policy.delay(n, random.Random(3)) for n in (1, 2, 3)]
        b = [policy.delay(n, random.Random(3)) for n in (1, 2, 3)]
        assert a == b

    def test_no_rng_means_the_undithered_delay(self):
        policy = RetryPolicy(base_delay=0.2, multiplier=2.0,
                             jitter_mode="full")
        assert policy.delay(2) == pytest.approx(0.4)

    def test_equal_mode_is_the_default_and_unchanged(self):
        assert RetryPolicy().jitter_mode == "equal"
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        delay = policy.delay(1, random.Random(1))
        # equal jitter dithers around the base delay, bounded by jitter
        assert 0.5 <= delay <= 1.5

    def test_mode_is_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter_mode="decorrelated")


# -- single-probe half-open breaker ---------------------------------------


class TestSingleProbeHalfOpen:
    def make_open_breaker(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        return breaker

    def test_only_one_probe_admitted(self):
        clock = ManualClock()
        breaker = self.make_open_breaker(clock)
        assert breaker.allow()
        assert not breaker.allow()  # the probe is still in flight
        assert not breaker.allow()

    def test_probe_failure_reopens_and_rearms(self):
        clock = ManualClock()
        breaker = self.make_open_breaker(clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.allow()  # next half-open window gets its probe

    def test_probe_success_closes(self):
        clock = ManualClock()
        breaker = self.make_open_breaker(clock)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.allow() and breaker.allow()

    def test_reset_clears_the_probe(self):
        clock = ManualClock()
        breaker = self.make_open_breaker(clock)
        assert breaker.allow()
        breaker.reset()
        assert breaker.allow()

    def test_threaded_half_open_admits_exactly_one(self):
        clock = ManualClock()
        breaker = self.make_open_breaker(clock)
        admitted = []
        barrier = threading.Barrier(8)

        def probe():
            barrier.wait()
            if breaker.allow():
                admitted.append(threading.get_ident())

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 1


# -- resilient wrapper: adaptive timeouts and allowances -------------------


class TestResilientSourceAdaptive:
    def test_warm_adaptive_timeout_replaces_the_static_one(self):
        clock = ManualClock()
        policy = AdaptiveTimeoutPolicy(
            AdaptiveTimeoutConfig(quantile=1.0, multiplier=2.0,
                                  min_samples=1)
        )
        source = ResilientSource(
            FaultInjectingSource(make_wrapper(), latency=0.4, clock=clock),
            policy=RetryPolicy(max_attempts=1),
            timeout=10.0,  # static: generous
            clock=clock,
            timeout_policy=policy,
        )
        from repro.msl import parse_rule

        rule = parse_rule("X :- X:<rec {<name 'Ann'>}>")
        assert source.effective_timeout() == 10.0  # cold: static holds
        policy.observe("src", 0.05)  # warm: timeout becomes 0.1s
        assert source.effective_timeout() == pytest.approx(0.1)
        with pytest.raises(SourceUnavailable) as err:
            source.answer(rule)
        assert isinstance(err.value.cause, SourceTimeoutError)

    def test_allowance_bounds_the_timeout(self):
        source = ResilientSource(make_wrapper(), timeout=10.0)
        assert source.effective_timeout(0.5) == 0.5
        no_timeout = ResilientSource(make_wrapper())
        assert no_timeout.effective_timeout(0.5) == 0.5
        assert no_timeout.effective_timeout() is None

    def test_allowance_cuts_retries_short(self):
        clock = ManualClock()
        inner = FaultInjectingSource(
            make_wrapper(), fault_rate=1.0, seed=1, clock=clock
        )
        source = ResilientSource(
            inner,
            policy=RetryPolicy(max_attempts=5, base_delay=0.2, jitter=0.0),
            clock=clock,
        )
        with call_allowance_scope(0.3):
            with pytest.raises(SourceUnavailable) as err:
                source.answer(None)
        # attempt 1 fails, one 0.2s backoff fits the 0.3s allowance,
        # attempt 2 fails, the next backoff would overrun: stop at 2.
        assert err.value.attempts == 2
        assert inner.calls == 2

    def test_abandoned_call_raises_hedge_abandoned(self):
        abandon = threading.Event()
        abandon.set()
        source = ResilientSource(make_wrapper())
        from repro.reliability.hedging import abandon_scope

        with abandon_scope(abandon, "hedge"):
            with pytest.raises(HedgeAbandoned):
                source.answer(None)
        # nothing was charged to health: the call never started
        assert source.health.status("src").attempts == 0

    def test_manager_enable_adaptive_reaches_existing_wrappers(self):
        manager = ResilienceManager(ResilienceConfig())
        wrapped = manager.wrap(make_wrapper())
        assert wrapped.timeout_policy is None
        manager.enable_adaptive()
        assert manager.wrap(wrapped.inner).timeout_policy is manager.adaptive
        assert "adaptive timeouts" in manager.describe()


# -- the hedge coordinator -------------------------------------------------


class GatedCall:
    """A callable whose Nth invocation blocks until released.

    ``release_on`` invocations set the release event on completion, so
    a fast hedge can wake a gated primary without wall-clock guessing.
    """

    def __init__(self, results, block_on=None, release_on=None):
        self.results = list(results)
        self.block_on = block_on or set()
        self.release_on = release_on or set()
        self.release = threading.Event()
        self.invocations = 0
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.invocations += 1
            index = self.invocations
        if index in self.block_on:
            self.release.wait(timeout=10.0)
        outcome = self.results[min(index, len(self.results)) - 1]
        if index in self.release_on:
            self.release.set()
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestHedgeCoordinator:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay=-1)
        with pytest.raises(ValueError):
            HedgePolicy(quantile=2.0)
        with pytest.raises(ValueError):
            HedgePolicy(max_workers=1)

    def test_fast_primary_never_hedges(self):
        coordinator = HedgeCoordinator(HedgePolicy(delay=5.0))
        try:
            assert coordinator.fetch("s", lambda: 42) == 42
            stats = coordinator.stats()
            assert stats["calls"] == 1
            assert stats["hedges_issued"] == 0
        finally:
            coordinator.shutdown()

    def test_stalled_primary_loses_to_the_hedge(self):
        call = GatedCall(["slow", "fast"], block_on={1})
        coordinator = HedgeCoordinator(HedgePolicy(delay=0.01))
        try:
            assert coordinator.fetch("s", call) == "fast"
            stats = coordinator.stats()
            assert stats["hedges_issued"] == 1
            assert stats["hedge_wins"] == 1
            assert stats["cancelled"] == 1
            call.release.set()
            assert coordinator.drain()
            assert coordinator.stats()["outstanding"] == 0
        finally:
            call.release.set()
            coordinator.shutdown()

    def test_failed_hedge_leaves_the_primary_to_win(self):
        # the hedge fails fast; its completion releases the gated
        # primary, whose success must still surface (a failed first
        # completion never ends the race)
        call = GatedCall(["recovered", TransientSourceError("hedge down")],
                         block_on={1}, release_on={2})
        coordinator = HedgeCoordinator(HedgePolicy(delay=0.01))
        try:
            assert coordinator.fetch("s", call) == "recovered"
            stats = coordinator.stats()
            assert stats["hedges_issued"] == 1
            assert stats["primary_wins"] == 1
        finally:
            call.release.set()
            coordinator.shutdown()

    def test_fast_failing_primary_raises_without_hedging(self):
        call = GatedCall([TransientSourceError("primary down")])
        coordinator = HedgeCoordinator(HedgePolicy(delay=5.0))
        try:
            with pytest.raises(TransientSourceError):
                coordinator.fetch("s", call)
            assert coordinator.stats()["hedges_issued"] == 0
        finally:
            coordinator.shutdown()

    def test_both_failing_surfaces_the_primary_error(self):
        primary_error = TransientSourceError("primary down")
        call = GatedCall([primary_error, TransientSourceError("hedge down")],
                         block_on={1}, release_on={2})
        coordinator = HedgeCoordinator(HedgePolicy(delay=0.01))
        try:
            with pytest.raises(TransientSourceError) as err:
                coordinator.fetch("s", call)
            assert "primary down" in str(err.value)
        finally:
            call.release.set()
            coordinator.shutdown()

    def test_adaptive_delay_warms_from_observed_latency(self):
        clock = ManualClock()
        policy = HedgePolicy(delay=9.0, quantile=1.0, multiplier=2.0,
                             min_samples=1)
        coordinator = HedgeCoordinator(policy, clock=clock)
        try:
            assert coordinator.delay_for("s") == 9.0  # cold
            coordinator.tracker.observe("s", 0.03)
            assert coordinator.delay_for("s") == pytest.approx(0.06)
        finally:
            coordinator.shutdown()

    def test_health_registry_feeds_the_delay(self):
        health = HealthRegistry()
        health.record_attempt("s")
        health.record_success("s", 0.02)
        coordinator = HedgeCoordinator(
            HedgePolicy(delay=9.0, quantile=1.0, multiplier=3.0,
                        min_samples=1),
            health=health,
        )
        try:
            assert coordinator.delay_for("s") == pytest.approx(0.06)
        finally:
            coordinator.shutdown()

    def test_hedge_role_is_visible_to_attempts(self):
        roles = []

        def observe_role():
            roles.append(current_hedge_role())
            return "ok"

        coordinator = HedgeCoordinator(HedgePolicy(delay=5.0))
        try:
            coordinator.fetch("s", observe_role)
            assert roles == ["primary"]
        finally:
            coordinator.shutdown()

    def test_describe_and_stats(self):
        coordinator = HedgeCoordinator()
        try:
            text = coordinator.describe()
            assert "hedging" in text
            assert set(coordinator.stats()) == {
                "calls", "hedges_issued", "hedge_wins", "primary_wins",
                "cancelled", "abandoned", "outstanding",
            }
        finally:
            coordinator.shutdown()


# -- dispatcher integration ------------------------------------------------


class CountingSource(Source):
    """A source that counts answers and can stall on demand."""

    def __init__(self, name="slow"):
        self.name = name
        self.calls = 0
        self._lock = threading.Lock()

    def answer(self, query):
        with self._lock:
            self.calls += 1
        return []

    def export(self):
        return []


class TestDispatcherHedging:
    def test_hedged_answer_is_cached_once(self):
        cache = AnswerCache(max_entries=8)
        coordinator = HedgeCoordinator(HedgePolicy(delay=5.0))
        dispatcher = SourceDispatcher(
            parallelism=2, cache=cache, hedging=coordinator
        )
        wrapper = make_wrapper()
        from repro.msl import parse_rule

        rule = parse_rule("X :- X:<rec {<name 'Ann'>}>")
        ship = lambda: (wrapper.answer(rule), True)
        try:
            first = dispatcher.fetch("src", "q", ship)
            second = dispatcher.fetch("src", "q", ship)
            assert canonical(first) == canonical(second)
            stats = cache.stats()
            assert stats["entries"] == 1
            assert stats["hits"] == 1
            assert dispatcher.stats()["hedging"]["calls"] == 1
        finally:
            dispatcher.shutdown()

    def test_dispatcher_is_active_and_described_with_hedging(self):
        coordinator = HedgeCoordinator()
        dispatcher = SourceDispatcher(hedging=coordinator)
        try:
            assert dispatcher.active
            assert "hedging" in dispatcher.describe()
        finally:
            dispatcher.shutdown()


# -- mediator integration --------------------------------------------------


def scaled_mediator(people=10, seed=1996, **kwargs):
    scenario = build_scaled_scenario(people, seed=seed, push_mode="needed")
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        push_mode="needed",
        register=False,
        **kwargs,
    )


class TestMediatorIntegration:
    def test_hedged_answers_match_unhedged(self):
        expected = canonical(scaled_mediator().answer(FANOUT_QUERY))
        hedged = scaled_mediator(
            parallelism=4, hedge=HedgePolicy(delay=0.0)
        )
        try:
            for _ in range(3):
                assert canonical(hedged.answer(FANOUT_QUERY)) == expected
            assert hedged.hedging.drain()
            stats = hedged.hedging.stats()
            assert stats["outstanding"] == 0
            assert (
                stats["hedge_wins"] + stats["primary_wins"]
                == stats["hedges_issued"]
            )
        finally:
            hedged.dispatcher.shutdown()

    def test_hedging_surfaces_in_snapshot_explain_and_metrics(self):
        mediator = scaled_mediator(hedge=True, telemetry=True)
        try:
            mediator.answer(FANOUT_QUERY)
            snapshot = mediator.health_snapshot()
            assert "hedging" in snapshot["execution"]
            assert "hedging" in mediator.explain(FANOUT_QUERY)
            assert "repro_hedge_attempts_total" in mediator.metrics_text()
        finally:
            mediator.dispatcher.shutdown()

    def test_adaptive_without_resilience_is_a_mediator_error(self):
        with pytest.raises(MediatorError):
            scaled_mediator(adaptive_timeouts=True)

    def test_adaptive_timeouts_need_resilience_or_build_their_own(self):
        mediator = scaled_mediator(
            resilience=ResilienceConfig(), adaptive_timeouts=True
        )
        assert mediator.resilience.adaptive is not None
        assert mediator.deadline_slicing

    def test_deadline_sliced_query_completes_within_budget(self):
        mediator = scaled_mediator(
            resilience=ResilienceConfig(),
            adaptive_timeouts=True,
            budget=QueryBudget(deadline=30.0),
        )
        results = mediator.answer(FANOUT_QUERY)
        assert results
        # a second run exercises the warm path
        assert canonical(mediator.answer(FANOUT_QUERY)) == canonical(results)


# -- cooperative cancellation mid-stage (satellite) ------------------------


class CancelAfter(Source):
    """Delegates to ``inner``; cancels ``token`` after N answers."""

    def __init__(self, inner, token, after=1):
        self.inner = inner
        self.name = inner.name
        self.token = token
        self.after = after
        self.calls = 0

    def answer(self, query):
        self.calls += 1
        result = self.inner.answer(query)
        if self.calls >= self.after:
            self.token.cancel("cancelled mid-stage by test")
        return result

    def export(self):
        return self.inner.export()

    @property
    def capability(self):
        return self.inner.capability

    @property
    def schema_facts(self):
        return self.inner.schema_facts


class TestCancellationMidStage:
    def test_cancel_between_source_calls_stops_the_run(self):
        scenario = build_scaled_scenario(
            12, seed=1996, push_mode="needed"
        )
        clock = ManualClock()
        token = CancellationToken()
        fault_sources = {}
        for name in ("whois", "cs"):
            inner = scenario.registry.resolve(name)
            scenario.registry.deregister(name)
            faulty = FaultInjectingSource(inner, latency=0.001, clock=clock)
            fault_sources[name] = faulty
            scenario.registry.register(
                CancelAfter(faulty, token, after=3)
            )
        mediator = Mediator(
            "med",
            scenario.mediator.specification,
            scenario.registry,
            scenario.externals,
            push_mode="needed",
            register=False,
            clock=clock,
            cancellation=token,
        )
        with pytest.raises(QueryCancelled):
            mediator.answer(FANOUT_QUERY)
        calls_at_cancel = sum(f.calls for f in fault_sources.values())
        # the checkpoint right after the cancelling call fired: at most
        # the in-flight call finished, nothing new was shipped
        assert calls_at_cancel <= 4
        with pytest.raises(QueryCancelled):
            mediator.answer(FANOUT_QUERY)
        assert (
            sum(f.calls for f in fault_sources.values()) == calls_at_cancel
        )


# -- fault injector extensions ---------------------------------------------


class TestFaultInjectorTail:
    def test_slow_rate_stretches_some_calls(self):
        clock = ManualClock()
        source = FaultInjectingSource(
            make_wrapper(), latency=0.01, slow_rate=0.5, slow_latency=1.0,
            seed=11, clock=clock,
        )
        from repro.msl import parse_rule

        rule = parse_rule("X :- X:<rec {<name 'Ann'>}>")
        for _ in range(20):
            source.answer(rule)
        slow = sum(1 for s in clock.sleeps if s == 1.0)
        fast = sum(1 for s in clock.sleeps if s == 0.01)
        assert slow + fast == 20
        assert slow and fast

    def test_default_schedules_are_untouched(self):
        # the slow-call draw must not consume randomness when off
        a = FaultInjectingSource(make_wrapper(), fault_rate=0.5, seed=9)
        b = FaultInjectingSource(make_wrapper(), fault_rate=0.5, seed=9,
                                 slow_rate=0.0, slow_latency=5.0)
        from repro.msl import parse_rule

        rule = parse_rule("X :- X:<rec {<name 'Ann'>}>")
        outcomes_a, outcomes_b = [], []
        for outcomes, source in ((outcomes_a, a), (outcomes_b, b)):
            for _ in range(12):
                try:
                    source.answer(rule)
                    outcomes.append("ok")
                except Exception:
                    outcomes.append("err")
        assert outcomes_a == outcomes_b

    def test_die_after_flips_dead(self):
        source = FaultInjectingSource(make_wrapper(), die_after=2)
        from repro.msl import parse_rule
        from repro.wrappers.base import SourceError

        rule = parse_rule("X :- X:<rec {<name 'Ann'>}>")
        source.answer(rule)
        source.answer(rule)
        with pytest.raises(SourceError):
            source.answer(rule)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjectingSource(make_wrapper(), slow_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjectingSource(make_wrapper(), slow_latency=-1)
        with pytest.raises(ValueError):
            FaultInjectingSource(make_wrapper(), die_after=-1)

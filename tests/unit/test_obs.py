"""Unit tests for the telemetry subsystem (:mod:`repro.obs`).

Covers the tracer (nesting, sampling, the slow-query log, retention),
the metrics registry (instruments, label children, quantiles,
collectors), the three exporters, the :class:`Telemetry` facade wired
into a real mediator, and the ``health_snapshot()`` deprecation shim.
"""

import io
import json

import pytest

from repro.datasets import JOE_CHUNG_QUERY, build_scenario
from repro.mediator import Mediator
from repro.obs import (
    ConsoleTreeExporter,
    JsonLinesExporter,
    MetricsRegistry,
    PrometheusTextExporter,
    Telemetry,
    Tracer,
)
from repro.obs.metrics import Sample
from repro.obs.span import (
    NOOP_TRACER,
    SPAN_KINDS,
    STATUSES,
    current_span,
    status_of_exception,
)
from repro.reliability import ManualClock


def traced_mediator(**kwargs):
    scenario = build_scenario()
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        register=False,
        telemetry=True,
        **kwargs,
    )


class TestTracer:
    def test_root_and_child_nesting(self):
        tracer = Tracer(clock=ManualClock())
        root = tracer.start_query("Q")
        with tracer.use(root):
            assert current_span() is root
            with tracer.span("plan-stage", "stage 1") as stage:
                assert current_span() is stage
                assert stage.parent_id == root.span_id
                assert stage.query_id == root.query_id
                with tracer.span("plan-node", "extract") as node:
                    assert node.parent_id == stage.span_id
            assert current_span() is root
        tracer.finish_span(root)
        assert current_span() is None
        spans = tracer.spans()
        assert [s.kind for s in spans] == ["plan-node", "plan-stage", "query"]

    def test_span_timing_uses_injected_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        root = tracer.start_query("Q")
        clock.advance(0.25)
        tracer.finish_span(root)
        assert root.duration == pytest.approx(0.25)

    def test_exception_sets_error_status_and_propagates(self):
        tracer = Tracer(clock=ManualClock())
        root = tracer.start_query("Q")
        with pytest.raises(RuntimeError):
            with tracer.use(root):
                with tracer.span("plan-node", "boom"):
                    raise RuntimeError("nope")
        failed = tracer.spans()[0]
        assert failed.status == "error"
        assert failed.end is not None

    def test_set_status_validates(self):
        tracer = Tracer(clock=ManualClock())
        span = tracer.start_query("Q")
        for status in STATUSES:
            span.set_status(status)
        with pytest.raises(ValueError):
            span.set_status("bogus")

    def test_status_of_exception_maps_cancellation(self):
        from repro.governor import QueryCancelled

        assert status_of_exception(QueryCancelled("stop")) == "cancelled"
        assert status_of_exception(ValueError("x")) == "error"

    def test_sample_rate_zero_drops_children_keeps_root_timing(self):
        clock = ManualClock()
        tracer = Tracer(sample_rate=0.0, clock=clock)
        root = tracer.start_query("Q")
        assert root.sampled is False
        with tracer.use(root):
            child = tracer.start_span("plan-stage", "stage 1")
        assert child.sampled is False
        # mutators on the shared no-op span are inert
        child.set_attribute("rows", 5)
        child.set_status("error")
        assert child.attributes == {}
        assert child.status == "ok"
        clock.advance(1.0)
        tracer.finish_span(root)
        assert root.duration == pytest.approx(1.0)
        assert tracer.spans() == []  # unsampled, not slow: not retained

    def test_sampling_is_seeded_and_head_based(self):
        decisions = [
            [
                Tracer(sample_rate=0.5, seed=7).start_query("Q").sampled
                for _ in range(1)
            ]
            for _ in range(2)
        ]
        assert decisions[0] == decisions[1]
        tracer = Tracer(sample_rate=0.5, seed=7)
        kept = sum(
            tracer.start_query("Q").sampled for _ in range(200)
        )
        assert 50 < kept < 150
        assert tracer.stats()["queries_sampled"] == kept

    def test_slow_query_log_retains_unsampled_roots(self):
        clock = ManualClock()
        tracer = Tracer(sample_rate=0.0, slow_query_ms=100.0, clock=clock)
        fast = tracer.start_query("fast")
        clock.advance(0.05)
        tracer.finish_span(fast)
        slow = tracer.start_query("slow")
        clock.advance(0.2)
        tracer.finish_span(slow)
        assert tracer.slow_queries == [slow]
        assert slow.attributes["slow"] is True
        assert [s.name for s in tracer.spans()] == ["slow"]

    def test_retention_cap_counts_drops(self):
        tracer = Tracer(max_spans=2, clock=ManualClock())
        for _ in range(4):
            tracer.finish_span(tracer.start_query("Q"))
        assert len(tracer.spans()) == 2
        assert tracer.stats()["spans_dropped"] == 2

    def test_clear_keeps_counters(self):
        tracer = Tracer(clock=ManualClock())
        tracer.finish_span(tracer.start_query("Q"))
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.stats()["queries_started"] == 1

    def test_forest_groups_by_query(self):
        tracer = Tracer(clock=ManualClock())
        for name in ("a", "b"):
            root = tracer.start_query(name)
            with tracer.use(root):
                with tracer.span("view-expansion", "expand"):
                    pass
            tracer.finish_span(root)
        forest = tracer.forest()
        assert len(forest) == 2
        assert all(len(spans) == 2 for spans in forest.values())

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(slow_query_ms=-1)
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_noop_tracer_is_inert(self):
        assert NOOP_TRACER.enabled is False
        span = NOOP_TRACER.start_query("Q")
        with NOOP_TRACER.span("plan-node", "n") as inner:
            assert inner is span
        NOOP_TRACER.finish_span(span)
        assert NOOP_TRACER.spans() == []
        assert NOOP_TRACER.stats() == {"enabled": False}

    def test_span_kinds_catalog_matches_hierarchy(self):
        assert SPAN_KINDS[0] == "query"
        assert "source-call" in SPAN_KINDS


class TestMetrics:
    def test_counter_labels_and_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", labelnames=("s",))
        counter.inc(s="a")
        counter.inc(2, s="a")
        counter.inc(s="b")
        assert counter.value(s="a") == 3
        assert counter.value(s="b") == 1
        with pytest.raises(ValueError):
            counter.inc(-1, s="a")
        with pytest.raises(ValueError):
            counter.inc(wrong="a")

    def test_bound_children_share_the_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("s",))
        child = counter.labels(s="a")
        child.inc()
        child.inc(4)
        counter.inc(s="a")
        assert counter.value(s="a") == 6

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value() == 7

    def test_histogram_quantiles_are_interpolated(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1, 2, 4, 8))
        for value in (0.5, 1.5, 1.5, 3.0, 6.0, 20.0):
            hist.observe(value)
        stats = hist.series_stats()
        assert stats["count"] == 6
        assert stats["sum"] == pytest.approx(32.5)
        assert 1.0 <= stats["p50"] <= 3.0
        # the +Inf bucket reports the observed maximum, never infinity
        assert stats["p99"] <= 20.0
        assert hist.quantile(1.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_histogram_bound_child_matches_direct_observe(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", labelnames=("n",), buckets=(1, 10))
        child = hist.labels(n="x")
        child.observe(0.5)
        hist.observe(5.0, n="x")
        assert hist.series_stats(n="x")["count"] == 2

    def test_registry_is_idempotent_and_type_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total")
        assert registry.counter("c_total") is first
        with pytest.raises(ValueError):
            registry.gauge("c_total")

    def test_collectors_feed_snapshot_and_survive_errors(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda: [Sample("ext_total", "counter", 42)]
        )
        registry.register_collector(lambda: 1 / 0)  # must be skipped
        snapshot = registry.snapshot()
        assert snapshot["ext_total"]["series"][""] == 42

    def test_prometheus_rendering_shape(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "things", labelnames=("s",))
        counter.inc(s='with"quote')
        registry.histogram("h_seconds", "times", buckets=(0.1, 1)).observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP c_total things" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{s="with\\"quote"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_sum 0.5" in text
        assert "h_seconds_count 1" in text


class TestExporters:
    def _tracer_with_tree(self):
        tracer = Tracer(clock=ManualClock())
        root = tracer.start_query("Q")
        with tracer.use(root):
            with tracer.span("source-call", "cs") as call:
                call.set_attribute("objects", 3)
        tracer.finish_span(root)
        return tracer

    def test_jsonl_round_trip(self):
        tracer = self._tracer_with_tree()
        registry = MetricsRegistry()
        registry.counter("c_total").inc(5)
        buffer = io.StringIO()
        written = JsonLinesExporter().export(
            buffer, tracer=tracer, registry=registry
        )
        records = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        assert written == len(records) == 3
        spans = [r for r in records if r["record"] == "span"]
        metrics = [r for r in records if r["record"] == "metric"]
        assert {s["kind"] for s in spans} == {"query", "source-call"}
        assert metrics == [
            {
                "record": "metric",
                "name": "c_total",
                "type": "counter",
                "labels": "",
                "value": 5,
            }
        ]

    def test_jsonl_export_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        JsonLinesExporter().export_path(
            str(path), tracer=self._tracer_with_tree()
        )
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["record"] == "span" for line in lines)

    def test_prometheus_exporter_writes_render(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total", "help").inc()
        path = tmp_path / "metrics.prom"
        PrometheusTextExporter().export_path(str(path), registry)
        assert path.read_text() == registry.render_prometheus()

    def test_console_tree_renders_nesting_and_attributes(self):
        text = ConsoleTreeExporter().render(self._tracer_with_tree())
        lines = text.splitlines()
        assert lines[0].startswith("[q")
        assert lines[1].startswith("query: Q")
        assert lines[2].startswith("  source-call: cs")
        assert "(objects=3)" in lines[2]

    def test_console_tree_flags_orphans(self):
        tracer = Tracer(max_spans=1, clock=ManualClock())
        root = tracer.start_query("Q")
        with tracer.use(root):
            with tracer.span("plan-stage", "stage 1"):
                pass
        tracer.finish_span(root)  # dropped by the cap: child is orphaned
        assert "(orphan)" in ConsoleTreeExporter().render(tracer)

    def test_console_tree_empty(self):
        tracer = Tracer(clock=ManualClock())
        assert ConsoleTreeExporter().render(tracer) == "no spans recorded"


class TestTelemetryFacade:
    def test_disabled_costs_nothing_visible(self):
        telemetry = Telemetry.disabled()
        assert telemetry.enabled is False
        assert telemetry.tracer is NOOP_TRACER
        telemetry.record_operation("ok", 0.1, [], None)
        telemetry.record_source_call("cs", 3)
        assert telemetry.describe() == "telemetry: disabled"

    def test_record_source_call_counts(self):
        telemetry = Telemetry()
        telemetry.record_source_call("cs", 3)
        telemetry.record_source_call("cs", 0)
        assert telemetry.source_calls_total.value(source="cs") == 2
        assert telemetry.source_objects_total.value(source="cs") == 3

    def test_record_operation_rolls_status_and_latency(self):
        telemetry = Telemetry()
        telemetry.record_operation("ok", 0.05, [], None)
        telemetry.record_operation("degraded", 0.2, [], None)
        assert telemetry.queries_total.value(status="ok") == 1
        assert telemetry.queries_total.value(status="degraded") == 1
        assert telemetry.query_seconds.series_stats()["count"] == 2


class TestMediatorIntegration:
    def test_traced_query_produces_single_rooted_tree(self):
        mediator = traced_mediator()
        result = mediator.answer(JOE_CHUNG_QUERY)
        assert result
        spans = mediator.telemetry.tracer.spans()
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1
        assert roots[0].kind == "query"
        ids = {s.span_id for s in spans}
        assert all(
            s.parent_id in ids for s in spans if s.parent_id is not None
        )
        kinds = {s.kind for s in spans}
        assert {"query", "plan-stage", "plan-node", "source-call"} <= kinds

    def test_metrics_text_reports_query_counters(self):
        mediator = traced_mediator()
        mediator.answer(JOE_CHUNG_QUERY)
        text = mediator.metrics_text()
        assert 'repro_queries_total{status="ok"} 1' in text
        assert "repro_query_seconds_count 1" in text
        assert 'repro_source_calls_total{source="cs"}' in text

    def test_metrics_text_works_when_telemetry_disabled(self):
        scenario = build_scenario()
        text = scenario.mediator.metrics_text()
        assert "repro_dispatcher_parallelism" in text

    def test_explain_includes_telemetry_section(self):
        mediator = traced_mediator()
        assert "-- telemetry --" in mediator.explain(JOE_CHUNG_QUERY)


class TestHealthSnapshotShim:
    def test_namespaced_shape(self):
        mediator = traced_mediator()
        mediator.answer(JOE_CHUNG_QUERY)
        snapshot = mediator.health_snapshot()
        assert set(snapshot) == {"sources", "execution", "profile"}
        assert snapshot["profile"]["nodes"]

    def test_legacy_keys_removed(self):
        # the pre-namespacing compatibility shim (underscore-prefixed
        # and bare-source keys with a DeprecationWarning) is gone: the
        # old spellings now raise KeyError like any other missing key
        mediator = traced_mediator()
        mediator.answer(JOE_CHUNG_QUERY)
        snapshot = mediator.health_snapshot()
        assert type(snapshot) is dict
        for legacy in ("_profile", "_execution", "whois", "no-such-source"):
            with pytest.raises(KeyError):
                snapshot[legacy]

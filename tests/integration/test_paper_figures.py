"""Integration tests reproducing the paper's figures exactly.

* Figure 2.2 — the OEM export of the ``cs`` relational wrapper;
* Figure 2.3 — the ``whois`` object structure (with its irregularity);
* Figure 2.4 — the integrated ``cs_person`` object for Joe Chung;
* Section 2's schema-evolution / schematic-discrepancy claims.
"""

import pytest

from repro.datasets import (
    JOE_CHUNG_QUERY,
    build_scenario,
)
from repro.oem import structural_key, to_python


@pytest.fixture
def scenario():
    return build_scenario()


class TestFigure22CsExport:
    def test_tuples_become_labelled_objects(self, scenario):
        export = scenario.cs.export()
        by_label = {}
        for o in export:
            by_label.setdefault(o.label, []).append(o)
        assert set(by_label) == {"employee", "student"}

    def test_employee_object_content(self, scenario):
        (employee,) = [
            o for o in scenario.cs.export() if o.label == "employee"
        ]
        assert to_python(employee) == {
            "first_name": "Joe",
            "last_name": "Chung",
            "title": "professor",
            "reports_to": "John Hennessy",
        }

    def test_student_object_content(self, scenario):
        (student,) = [
            o for o in scenario.cs.export() if o.label == "student"
        ]
        assert to_python(student) == {
            "first_name": "Nick",
            "last_name": "Naive",
            "year": 3,
        }

    def test_schema_labels_incorporated_per_object(self, scenario):
        # "the schema information has now been incorporated into the
        # individual OEM objects"
        for o in scenario.cs.export():
            assert all(child.is_atomic for child in o.children)
            assert all(child.label for child in o.children)


class TestFigure23Whois:
    def test_two_persons(self, scenario):
        export = scenario.whois.export()
        assert [o.label for o in export] == ["person", "person"]

    def test_joe_has_email_nick_does_not(self, scenario):
        joe, nick = scenario.whois.export()
        assert joe.get("e_mail") == "chung@cs"
        assert nick.first("e_mail") is None
        assert nick.get("year") == 3

    def test_oids_preserved_from_figure(self, scenario):
        joe, nick = scenario.whois.export()
        assert joe.oid.text == "&p1"
        assert nick.oid.text == "&p2"


class TestFigure24IntegratedObject:
    def test_joe_chung_object(self, scenario):
        (result,) = scenario.mediator.answer(JOE_CHUNG_QUERY)
        assert result.label == "cs_person"
        assert to_python(result) == {
            "name": "Joe Chung",
            "rel": "employee",
            "e_mail": "chung@cs",
            "title": "professor",
            "reports_to": "John Hennessy",
        }

    def test_subobject_order_matches_figure(self, scenario):
        (result,) = scenario.mediator.answer(JOE_CHUNG_QUERY)
        assert [c.label for c in result.children] == [
            "name",
            "rel",
            "e_mail",
            "title",
            "reports_to",
        ]

    def test_full_view_has_both_persons(self, scenario):
        view = scenario.mediator.export()
        names = sorted(o.get("name") for o in view)
        assert names == ["Joe Chung", "Nick Naive"]

    def test_nick_combines_rest_fields(self, scenario):
        view = scenario.mediator.export()
        (nick,) = [o for o in view if o.get("name") == "Nick Naive"]
        assert to_python(nick) == {
            "name": "Nick Naive",
            "rel": "student",
            "year": 3,
        }


class TestSchemaEvolution:
    """Section 2: if 'birthday' is included or dropped, it should be
    automatically included or dropped from the med view, without need to
    change the mediator specification."""

    def test_attribute_added_to_cs_appears(self, scenario):
        student = scenario.cs.database.table("student")
        student.add_attribute("birthday")
        student.delete_where(lambda r: True)
        student.insert("Nick", "Naive", 3, "1975-06-01")
        view = scenario.mediator.export()
        (nick,) = [o for o in view if o.get("name") == "Nick Naive"]
        assert nick.get("birthday") == "1975-06-01"

    def test_attribute_dropped_from_cs_disappears(self, scenario):
        scenario.cs.database.table("employee").drop_attribute("title")
        (joe,) = scenario.mediator.answer(JOE_CHUNG_QUERY)
        assert joe.first("title") is None
        assert joe.get("reports_to") == "John Hennessy"

    def test_field_added_to_whois_appears(self, scenario):
        from repro.oem import atom

        joe = scenario.whois.export()[0]
        scenario.whois.remove_where("person")
        enriched = joe.with_children(
            list(joe.children) + [atom("birthday", "1960-02-02")]
        )
        scenario.whois.add(enriched)
        (result,) = scenario.mediator.answer(JOE_CHUNG_QUERY)
        assert result.get("birthday") == "1960-02-02"


class TestSchematicDiscrepancy:
    """R binds a *value* in whois and a *label* in cs simultaneously."""

    def test_rel_value_comes_from_relation_name(self, scenario):
        view = scenario.mediator.export()
        rels = {o.get("name"): o.get("rel") for o in view}
        assert rels == {"Joe Chung": "employee", "Nick Naive": "student"}

    def test_mismatched_relation_excluded(self, scenario):
        # make whois claim Joe is a student: the join must then fail for
        # the employee table and find no student row either
        from repro.oem import atom, obj

        scenario.whois.clear()
        scenario.whois.add(
            obj(
                "person",
                atom("name", "Joe Chung"),
                atom("dept", "CS"),
                atom("relation", "student"),
            )
        )
        assert scenario.mediator.answer(JOE_CHUNG_QUERY) == []


class TestJoinOnlySemantics:
    """med 'only includes information for people that appear in both cs
    and whois' — the documented limitation of MS1."""

    def test_person_missing_from_cs_excluded(self, scenario):
        from repro.oem import atom, obj

        scenario.whois.add(
            obj(
                "person",
                atom("name", "Only Whois"),
                atom("dept", "CS"),
                atom("relation", "student"),
            )
        )
        names = {o.get("name") for o in scenario.mediator.export()}
        assert "Only Whois" not in names

    def test_person_missing_from_whois_excluded(self, scenario):
        scenario.cs.database.table("student").insert("Sue", "Solo", 1)
        names = {o.get("name") for o in scenario.mediator.export()}
        assert "Sue Solo" not in names

    def test_non_cs_department_excluded(self, scenario):
        from repro.oem import atom, obj

        scenario.whois.add(
            obj(
                "person",
                atom("name", "Joe Chung"),
                atom("dept", "EE"),  # wrong department
                atom("relation", "employee"),
            )
        )
        results = scenario.mediator.answer(JOE_CHUNG_QUERY)
        assert len(results) == 1  # only the CS one

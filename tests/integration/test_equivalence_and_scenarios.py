"""Cross-module integration: engine-vs-reference equivalence, capability
compensation end-to-end, mediator stacking, and the bibliography
scenario (fusion + name normalisation + dedup)."""

import pytest

from repro.datasets import (
    WHOIS_LIMITED_CAPABILITY,
    build_bibliography,
    build_scaled_scenario,
    build_scenario,
)
from repro.mediator import Mediator
from repro.msl import evaluate_rule, parse_query, parse_rule, parse_specification
from repro.oem import structural_key, to_python
from repro.wrappers import Capability, OEMStoreWrapper, SourceRegistry


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


QUERIES = [
    "X :- X:<cs_person {<name N>}>@med",
    "X :- X:<cs_person {<year 3>}>@med",
    "X :- X:<cs_person {<rel 'student'>}>@med",
    "X :- X:<cs_person {<rel R> <e_mail E>}>@med",
    "<who N> :- <cs_person {<name N> <title 'professor'>}>@med",
]


class TestEngineMatchesReferenceSemantics:
    """The optimized MSI must agree with the naive reference evaluator."""

    @pytest.fixture(scope="class")
    def scaled(self):
        return build_scaled_scenario(40, seed=11)

    def reference_answer(self, scenario, query_text):
        # expand the query, then evaluate the logical program naively
        # against the full exports
        program = scenario.mediator.expander.expand(parse_query(query_text))
        forests = {
            "whois": scenario.whois.export(),
            "cs": scenario.cs.export(),
        }
        objects = []
        for logical in program:
            objects.extend(
                evaluate_rule(
                    logical.rule,
                    forests,
                    scenario.mediator.externals,
                    check=False,
                )
            )
        from repro.oem import eliminate_duplicates

        return eliminate_duplicates(objects)

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_small_scenario(self, query_text):
        scenario = build_scenario()
        engine_result = scenario.mediator.answer(query_text)
        reference = self.reference_answer(scenario, query_text)
        assert canonical(engine_result) == canonical(reference)

    @pytest.mark.parametrize("query_text", QUERIES[:3])
    def test_scaled_scenario(self, scaled, query_text):
        engine_result = scaled.mediator.answer(query_text)
        reference = self.reference_answer(scaled, query_text)
        assert canonical(engine_result) == canonical(reference)

    @pytest.mark.parametrize("strategy", ["heuristic", "statistics", "fetch_all"])
    def test_strategies_agree(self, strategy):
        scenario = build_scenario(strategy=strategy)
        result = scenario.mediator.answer(QUERIES[0])
        baseline = build_scenario().mediator.answer(QUERIES[0])
        assert canonical(result) == canonical(baseline)

    @pytest.mark.parametrize("push_mode", ["complete", "needed"])
    def test_push_modes_agree_on_regular_data(self, push_mode):
        scenario = build_scenario(push_mode=push_mode)
        result = scenario.mediator.answer(QUERIES[1])
        assert len(result) == 1

    def test_push_modes_agree_even_with_duplicate_labels(self):
        # a person with TWO name subobjects: 'complete' mode explores the
        # extra pushdown placements, but because MS1's head flattens
        # everything into one set, the extra logical rules construct
        # structurally identical objects — the answers coincide while the
        # logical programs differ in size (the cost 'complete' pays)
        from repro.oem import atom, obj

        def scenario_with_dup(push_mode):
            scenario = build_scenario(push_mode=push_mode)
            scenario.whois.add(
                obj(
                    "person",
                    atom("name", "Alias Man"),
                    atom("name", "Joe Chung"),
                    atom("dept", "CS"),
                    atom("relation", "employee"),
                )
            )
            return scenario

        query = "X :- X:<cs_person {<name 'Joe Chung'>}>@med"
        complete_scenario = scenario_with_dup("complete")
        needed_scenario = scenario_with_dup("needed")
        complete = complete_scenario.mediator.answer(query)
        needed = needed_scenario.mediator.answer(query)
        assert canonical(complete) == canonical(needed)
        assert len(complete_scenario.mediator.last_program) > len(
            needed_scenario.mediator.last_program
        )
        # both find the alias person (via the source-side injective match)
        assert len(needed) == 2


class TestCapabilityCompensationEndToEnd:
    def test_same_answers_with_limited_source(self):
        full = build_scenario()
        limited = build_scenario(whois_capability=WHOIS_LIMITED_CAPABILITY)
        for query_text in QUERIES:
            assert canonical(full.mediator.answer(query_text)) == canonical(
                limited.mediator.answer(query_text)
            ), query_text

    def test_limited_source_receives_more_objects(self):
        query = "X :- X:<cs_person {<year 3>}>@med"
        full = build_scenario()
        full.mediator.answer(query)
        objects_full = full.mediator.last_context.objects_received["whois"]

        limited = build_scenario(whois_capability=WHOIS_LIMITED_CAPABILITY)
        limited.mediator.answer(query)
        objects_limited = limited.mediator.last_context.objects_received[
            "whois"
        ]
        # compensation means whois ships unfiltered bindings
        assert objects_limited >= objects_full


class TestMediatorStacking:
    def test_two_levels(self):
        scenario = build_scenario()
        summary = Mediator(
            "summary",
            "<staff {<who N> <status R>}> :-"
            " <cs_person {<name N> <rel R>}>@med",
            scenario.registry,
        )
        result = summary.answer("X :- X:<staff {<status 'employee'>}>@summary")
        assert len(result) == 1
        assert result[0].get("who") == "Joe Chung"

    def test_three_levels(self):
        scenario = build_scenario()
        Mediator(
            "summary",
            "<staff {<who N> <status R>}> :-"
            " <cs_person {<name N> <rel R>}>@med",
            scenario.registry,
        )
        top = Mediator(
            "top",
            "<names {<n N>}> :- <staff {<who N>}>@summary",
            scenario.registry,
        )
        names = {o.get("n") for o in top.export()}
        assert names == {"Joe Chung", "Nick Naive"}


class TestBibliographyScenario:
    @pytest.fixture(scope="class")
    def bib(self):
        return build_bibliography(papers=14, overlap_fraction=0.5, seed=3)

    def test_authors_normalised(self, bib):
        for publication in bib.mediator.export():
            author = publication.get("author")
            assert ", " in author, author

    def test_overlapping_records_fused(self, bib):
        # a record in both sources must appear once, with the relational
        # source's venue AND the web source's extra fields when present
        view = bib.mediator.export()
        titles = [o.get("title") for o in view]
        assert len(titles) == len(set(titles))  # no duplicate titles

    def test_fused_records_combine_fields(self, bib):
        view = bib.mediator.export()
        fused = [
            o
            for o in view
            if o.first("venue") is not None
            and (o.first("pages") is not None or o.first("url") is not None)
        ]
        assert fused, "expected at least one fused record with both kinds"

    def test_single_source_records_included(self, bib):
        # unlike MS1's join-only view, fusion keeps single-source records
        deptbib_titles = {
            row[0] for row in bib.deptbib.database.table("paper")
        }
        web_titles = {
            o.get("title") for o in bib.webbib.export()
        }
        only_dept = deptbib_titles - web_titles
        if only_dept:
            view_titles = {o.get("title") for o in bib.mediator.export()}
            assert only_dept <= view_titles

    def test_query_by_title(self, bib):
        view = bib.mediator.export()
        some_title = view[0].get("title")
        result = bib.mediator.answer(
            f"P :- P:<publication {{<title '{some_title}'>}}>@bib"
        )
        assert len(result) == 1
        assert result[0].get("title") == some_title


class TestHeterogeneousArchitecture:
    """Figure 1.1: several sources of different kinds behind one mediator."""

    def test_three_source_integration(self):
        registry = SourceRegistry()
        from repro.oem import parse_oem

        registry.register(
            OEMStoreWrapper(
                "mail",
                parse_oem(
                    """
                    <&m1, message, set, {&s1,&b1}>
                      <&s1, sender, string, 'chung@cs'>
                      <&b1, subject, string, 'meeting'>
                    """
                ),
            )
        )
        scenario = build_scenario()
        spec = """
        <contact {<name N> <addr E> <last_subject S>}> :-
            <cs_person {<name N> <e_mail E>}>@med
            AND <message {<sender E> <subject S>}>@mail
        """
        contacts = Mediator("contacts", spec, scenario.registry, register=False)
        # the mail wrapper lives in its own registry; merge registries
        scenario.registry.register(registry.resolve("mail"))
        result = contacts.export()
        assert len(result) == 1
        assert to_python(result[0]) == {
            "name": "Joe Chung",
            "addr": "chung@cs",
            "last_subject": "meeting",
        }

"""Integration tests replaying Section 3's query-processing walkthrough.

* the view expansion producing rule (R2) of Section 3.1/3.2;
* the τ1/τ2 pushdown of Section 3.3 (rules Q3/Q4);
* Figure 3.6 — the physical datamerge graph execution, node by node,
  with the tables that flow between the nodes.
"""

import pytest

from repro.datasets import JOE_CHUNG_QUERY, YEAR3_QUERY, build_scenario
from repro.mediator import (
    ConstructorNode,
    ExternalPredNode,
    ExtractorNode,
    ParameterizedQueryNode,
    QueryNode,
)
from repro.msl import parse_query


@pytest.fixture
def scenario():
    # push_mode='needed' reproduces the paper's presentation (a single
    # unifier θ1 for Q1); trace=True records the Figure 3.6 tables
    return build_scenario(push_mode="needed", trace=True)


class TestViewExpansionR2:
    def test_single_rule_datamerge_program(self, scenario):
        program = scenario.mediator.expander.expand(
            parse_query(JOE_CHUNG_QUERY)
        )
        assert len(program) == 1
        text = str(program.rules[0])
        # the head of R2: the definition of JC with N replaced by the
        # constant
        assert text.startswith("<cs_person {<name 'Joe Chung'>")
        # the tail: the specification tail with 'Joe Chung' substituted
        assert "<person {<name 'Joe Chung'> <dept 'CS'>" in text
        assert "decomp('Joe Chung'" in text
        assert "@whois" in text and "@cs" in text

    def test_unifier_theta1(self, scenario):
        program = scenario.mediator.expander.expand(
            parse_query(JOE_CHUNG_QUERY)
        )
        theta = program.rules[0].unifier
        text = str(theta)
        # θ1 = [ N ↦ 'Joe Chung', JC ⇒ <cs_person {...}> ]
        assert "'Joe Chung'" in text
        assert "JC" in text and "=>" in text


class TestPushdownTau1Tau2:
    def test_two_logical_rules(self, scenario):
        program = scenario.mediator.expander.expand(parse_query(YEAR3_QUERY))
        texts = sorted(str(r) for r in program)
        assert len(texts) == 2
        joined = "\n".join(texts)
        assert "Rest1_r1:{<year 3>}" in joined  # Q3
        assert "Rest2_r1:{<year 3>}" in joined  # Q4

    def test_year3_answer_is_nick(self, scenario):
        (nick,) = scenario.mediator.answer(YEAR3_QUERY)
        assert nick.get("name") == "Nick Naive"

    def test_merging_with_existing_conditions(self, scenario):
        # a query constraining both a direct item and a pushed one
        program = scenario.mediator.expander.expand(
            parse_query(
                "S :- S:<cs_person {<name 'Nick Naive'> <year 3>}>@med"
            )
        )
        assert len(program) == 2
        (nick,) = scenario.mediator.answer(
            "S :- S:<cs_person {<name 'Nick Naive'> <year 3>}>@med"
        )
        assert nick.get("rel") == "student"


class TestFigure36GraphExecution:
    def trace_for(self, scenario, query):
        scenario.mediator.answer(query)
        return scenario.mediator.last_context.trace

    def test_node_sequence(self, scenario):
        trace = self.trace_for(scenario, JOE_CHUNG_QUERY)
        kinds = [type(entry.node).__name__ for entry in trace]
        assert kinds == [
            "QueryNode",
            "ExtractorNode",
            "ExternalPredNode",
            "ParameterizedQueryNode",
            "ExtractorNode",
            "ConstructorNode",
        ]

    def test_qw_result_table(self, scenario):
        trace = self.trace_for(scenario, JOE_CHUNG_QUERY)
        query_entry = trace[0]
        assert isinstance(query_entry.node, QueryNode)
        assert query_entry.node.source == "whois"
        # Qw returns one bind_for_whois object (only Joe matches)
        assert len(query_entry.table) == 1
        (row,) = query_entry.table.rows
        assert row[0].label == "bind_for_whois"

    def test_extractor_table_bindings(self, scenario):
        trace = self.trace_for(scenario, JOE_CHUNG_QUERY)
        extract = trace[1]
        assert isinstance(extract.node, ExtractorNode)
        (row,) = extract.table.rows
        values = extract.table.row_dict(row)
        # R = 'employee', Rest1 = { e_mail }
        r_column = [c for c in extract.table.columns if c.startswith("R_")]
        rest_column = [
            c for c in extract.table.columns if c.startswith("Rest1")
        ]
        assert values[r_column[0]] == "employee"
        assert [o.label for o in values[rest_column[0]]] == ["e_mail"]

    def test_decomp_table(self, scenario):
        trace = self.trace_for(scenario, JOE_CHUNG_QUERY)
        external = trace[2]
        assert isinstance(external.node, ExternalPredNode)
        (row,) = external.table.rows
        values = external.table.row_dict(row)
        ln = [c for c in external.table.columns if c.startswith("LN")][0]
        fn = [c for c in external.table.columns if c.startswith("FN")][0]
        assert values[ln] == "Chung"
        assert values[fn] == "Joe"

    def test_parameterized_query_emits_qcs(self, scenario):
        trace = self.trace_for(scenario, JOE_CHUNG_QUERY)
        param = trace[3]
        assert isinstance(param.node, ParameterizedQueryNode)
        assert param.node.source == "cs"
        row = trace[2].table.row_dict(trace[2].table.rows[0])
        concrete = param.node.instantiate(row)
        text = str(concrete)
        # Qcs2 of the paper: the employee-relation query
        assert "<employee {" in text
        assert "<first_name 'Joe'>" in text
        assert "<last_name 'Chung'>" in text

    def test_constructor_output(self, scenario):
        trace = self.trace_for(scenario, JOE_CHUNG_QUERY)
        constructor = trace[-1]
        assert isinstance(constructor.node, ConstructorNode)
        (row,) = constructor.table.rows
        result = row[0]
        assert result.label == "cs_person"
        assert result.get("title") == "professor"

    def test_trace_renders_tables(self, scenario):
        scenario.mediator.answer(JOE_CHUNG_QUERY)
        rendered = scenario.mediator.engine.render_trace()
        assert "query whois" in rendered
        assert "'Joe Chung'" in rendered
        assert "construct" in rendered

    def test_queries_sent_matches_paper_plan(self, scenario):
        # one query to whois, then one parameterized query per binding
        # (only Joe matches) to cs
        scenario.mediator.answer(JOE_CHUNG_QUERY)
        assert scenario.mediator.last_context.queries_sent == {
            "whois": 1,
            "cs": 1,
        }

    def test_year3_sends_one_cs_query_per_binding(self, scenario):
        scenario.mediator.answer(YEAR3_QUERY)
        sent = scenario.mediator.last_context.queries_sent
        # two logical rules -> two whois queries; Q3's whois query yields
        # one binding (Nick) -> one cs query; Q4's whois query yields two
        # bindings -> two cs queries
        assert sent["whois"] == 2
        assert sent["cs"] == 3

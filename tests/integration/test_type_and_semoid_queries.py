"""Integration tests: type-slot constraints and semantic-oid matching."""

import pytest

from repro.datasets import MS1_FUSION, build_cs_database, build_scenario, build_whois_objects
from repro.mediator import Mediator
from repro.msl import match_pattern, parse_pattern
from repro.oem import OEMObject, SemanticOid, atom
from repro.wrappers import OEMStoreWrapper, RelationalWrapper, SourceRegistry


class TestTypeConstrainedQueries:
    def test_type_constraint_answered_by_materialization(self):
        scenario = build_scenario()
        result = scenario.mediator.answer(
            "X :- X:<cs_person {<_ year integer Y>}>@med"
        )
        assert [o.get("name") for o in result] == ["Nick Naive"]

    def test_wrong_type_yields_nothing(self):
        scenario = build_scenario()
        assert (
            scenario.mediator.answer(
                "X :- X:<cs_person {<_ year string Y>}>@med"
            )
            == []
        )

    def test_type_constraints_direct_to_wrapper(self):
        scenario = build_scenario()
        from repro.msl import parse_rule

        result = scenario.whois.answer(
            parse_rule("<n N> :- <person {<name N> <_ year integer 3>}>")
        )
        assert [o.value for o in result] == ["Nick Naive"]


class TestSemanticOidMatching:
    @pytest.fixture
    def fusion_mediator(self):
        registry = SourceRegistry()
        registry.register(OEMStoreWrapper("whois", build_whois_objects()))
        registry.register(RelationalWrapper("cs", build_cs_database()))
        return Mediator("med", MS1_FUSION, registry)

    def test_view_objects_carry_semantic_oids(self, fusion_mediator):
        view = fusion_mediator.export()
        assert all(isinstance(o.oid, SemanticOid) for o in view)

    def test_match_pattern_on_semantic_oid(self, fusion_mediator):
        view = fusion_mediator.export()
        pattern = parse_pattern("<&person('Chung', FN) cs_person {| R}>")
        hits = [
            env
            for obj_ in view
            for env in match_pattern(pattern, obj_)
        ]
        assert len(hits) == 1
        assert hits[0]["FN"] == "Joe"

    def test_semantic_oid_functor_mismatch(self):
        obj_ = OEMObject(
            "pub", [atom("t", "x")], "set", SemanticOid("pub", ["x"])
        )
        pattern = parse_pattern("<&other('x') pub {| R}>")
        assert list(match_pattern(pattern, obj_)) == []

    def test_semantic_oid_arity_mismatch(self):
        obj_ = OEMObject(
            "pub", [atom("t", "x")], "set", SemanticOid("pub", ["x", 1])
        )
        pattern = parse_pattern("<&pub('x') pub {| R}>")
        assert list(match_pattern(pattern, obj_)) == []

    def test_semantic_oid_never_matches_plain_oid(self):
        plain = atom("t", "x", oid="&plain")
        pattern = parse_pattern("<&f('x') t 'x'>")
        assert list(match_pattern(pattern, plain)) == []

"""Regression tests: pushdown into head-level ``| Rest`` variables.

A specification may write its head as ``<message {... | Rest}>`` (rest
splice) instead of ``<message {... Rest}>`` (bare variable).  Both are
pushdown targets for query conditions, and the pushed conditions must
land in the *tail* only — never in the instantiated head.
"""

import pytest

from repro.mediator import Mediator
from repro.msl import parse_query
from repro.oem import parse_oem
from repro.wrappers import OEMStoreWrapper, SourceRegistry

SOURCE = """
<&m1, mail, set, {&f1,&s1,&x1}>
  <&f1, from, string, 'ann@cs'>
  <&s1, subject, string, 'hello'>
  <&x1, x_mailer, string, 'elm'>
;
<&m2, mail, set, {&f2,&s2,&l2}>
  <&f2, from, string, 'bob@cs'>
  <&s2, subject, string, 'meeting'>
  <&l2, labels, set, {&l2a}>
    <&l2a, label, string, 'work'>
;
"""

SPEC_REST = (
    "<message {<from F> <subject S> | Rest}> :-"
    " <mail {<from F> <subject S> | Rest}>@src"
)
SPEC_VARITEM = (
    "<message {<from F> <subject S> Rest}> :-"
    " <mail {<from F> <subject S> | Rest}>@src"
)


@pytest.fixture(params=[SPEC_REST, SPEC_VARITEM], ids=["head-rest", "head-varitem"])
def mediator(request):
    registry = SourceRegistry(OEMStoreWrapper("src", parse_oem(SOURCE)))
    return Mediator("m", request.param, registry)


class TestHeadRestEquivalence:
    def test_export_identical(self, mediator):
        view = mediator.export()
        assert len(view) == 2
        fields = {o.get("from") for o in view}
        assert fields == {"ann@cs", "bob@cs"}

    def test_query_on_explicit_item(self, mediator):
        (result,) = mediator.answer("M :- M:<message {<from 'ann@cs'>}>@m")
        assert result.get("x_mailer") == "elm"

    def test_query_pushed_into_rest(self, mediator):
        (result,) = mediator.answer("M :- M:<message {<x_mailer 'elm'>}>@m")
        assert result.get("from") == "ann@cs"

    def test_nested_condition_pushed_into_rest(self, mediator):
        (result,) = mediator.answer(
            "M :- M:<message {<labels {<label 'work'>}>}>@m"
        )
        assert result.get("from") == "bob@cs"

    def test_label_variable_reaches_rest_fields(self, mediator):
        labels = mediator.answer("<field L> :- <message {<L V>}>@m")
        found = {o.value for o in labels}
        assert {"from", "subject", "x_mailer", "labels"} <= found

    def test_head_never_carries_conditions(self, mediator):
        # the logical program's heads must be instantiable (no RestSpec
        # conditions survive into them)
        program = mediator.expander.expand(
            parse_query("M :- M:<message {<x_mailer 'elm'>}>@m")
        )
        for logical in program:
            for item in logical.rule.head:
                assert ":{" not in str(item)

    def test_query_rest_over_head_rest(self, mediator):
        # the query's own rest variable must absorb the head's leftovers
        result = mediator.answer(
            "<summary {<from F> | QR}> :- <message {<from F> | QR}>@m"
        )
        assert len(result) == 2
        (ann,) = [o for o in result if o.get("from") == "ann@cs"]
        assert {c.label for c in ann.children} == {
            "from",
            "subject",
            "x_mailer",
        }

"""Concurrent queries on one shared Mediator.

PR 7 removed the mediator's per-query lock: operations now live in
thread-local state and the admission controller bounds concurrency.
These tests put 8-32 real threads on a single mediator and check that

* every thread gets exactly the answer a sequential run produces,
* the answer cache, compile cache, health registry, and metrics stay
  internally consistent under contention, and
* admission accounting balances exactly when load is shed.
"""

import threading

from repro.datasets import build_scaled_scenario
from repro.exec.cache import AnswerCache
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.serving import AdmissionConfig, QueryRejected

STUDENTS_QUERY = "S :- S:<cs_person {<rel 'student'>}>@med"
YEAR3_QUERY = "S :- S:<cs_person {<year 3>}>@med"
EMPLOYEES_QUERY = "S :- S:<cs_person {<rel 'employee'>}>@med"
QUERIES = (STUDENTS_QUERY, YEAR3_QUERY, EMPLOYEES_QUERY)


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def _shared_mediator(admission, people=12, seed=1996, **kwargs):
    scenario = build_scaled_scenario(people, seed=seed, push_mode="needed")
    return Mediator(
        "med",
        scenario.mediator.specification,
        scenario.registry,
        scenario.externals,
        push_mode="needed",
        register=False,
        admission=admission,
        **kwargs,
    )


def _run_clients(mediator, threads, rounds, queries=QUERIES):
    """Each thread answers its queries; returns (results, sheds, errors)."""
    results = []
    sheds = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(threads)

    def client(index):
        barrier.wait()  # maximal contention: everyone starts together
        for round_index in range(rounds):
            query = queries[(index + round_index) % len(queries)]
            try:
                answer = mediator.answer(
                    query, tenant=f"tenant{index % 4}", priority=index % 3
                )
            except QueryRejected as exc:
                with lock:
                    sheds.append(exc)
            except Exception as exc:  # pragma: no cover - fail the test
                with lock:
                    errors.append(exc)
            else:
                with lock:
                    results.append((query, canonical(answer)))

    workers = [
        threading.Thread(target=client, args=(index,))
        for index in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60.0)
    assert not any(w.is_alive() for w in workers), "client thread hung"
    return results, sheds, errors


def test_parallel_answers_equal_sequential_answers():
    """32 threads, no shedding: every answer matches the sequential one."""
    reference = {
        query: canonical(
            build_scaled_scenario(
                12, seed=1996, push_mode="needed"
            ).mediator.answer(query)
        )
        for query in QUERIES
    }
    config = AdmissionConfig(max_concurrent=4, max_queue_depth=256)
    with _shared_mediator(config, parallelism=2) as mediator:
        results, sheds, errors = _run_clients(mediator, threads=32, rounds=2)
        assert errors == []
        assert sheds == []  # the queue is deep enough for everyone
        assert len(results) == 64
        for query, answer in results:
            assert answer == reference[query], query
        serving = mediator.health_snapshot()["serving"]
        assert serving["submitted"] == 64
        assert serving["admitted"] == serving["completed"] == 64
        assert serving["inflight"] == 0
        assert serving["queue_depth"] == 0


def test_caches_and_metrics_stay_consistent_under_contention():
    cache = AnswerCache(max_entries=64)
    config = AdmissionConfig(max_concurrent=8, max_queue_depth=256)
    with _shared_mediator(config, cache=cache, parallelism=2) as mediator:
        results, sheds, errors = _run_clients(mediator, threads=16, rounds=3)
        assert errors == []
        assert sheds == []
        total = 16 * 3

        # answer cache: counters balance and entries are bounded
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] > 0
        assert 0 < stats["entries"] <= 64
        assert stats["hits"] >= 0 and stats["misses"] >= 0

        # compile cache: shared across threads without corruption
        compile_stats = mediator.health_snapshot()["profile"].get("compile")
        if compile_stats is not None:
            assert compile_stats["hits"] + compile_stats["misses"] >= 0

        # cached answers are the same objects the uncached run produced
        by_query = {}
        for query, answer in results:
            by_query.setdefault(query, set()).add(tuple(answer))
        for query, answers in by_query.items():
            assert len(answers) == 1, f"{query} gave divergent answers"

        # metrics agree with the controller's own snapshot
        serving = mediator.health_snapshot()["serving"]
        assert serving["submitted"] == total
        text = mediator.metrics_text()
        assert f"repro_admission_submitted_total {total}" in text
        assert f"repro_admission_completed_total {total}" in text

        # health registry survives concurrent reads/writes
        health = mediator.health_snapshot()
        assert set(health) >= {"sources", "profile", "serving"}


def test_accounting_balances_when_overloaded():
    """A tiny gate against a thundering herd: sheds + completions add up."""
    config = AdmissionConfig(
        max_concurrent=2, max_queue_depth=2, adaptive=False
    )
    with _shared_mediator(config, people=8) as mediator:
        results, sheds, errors = _run_clients(mediator, threads=16, rounds=2)
        assert errors == []
        total = 16 * 2
        assert len(results) + len(sheds) == total
        for exc in sheds:
            assert exc.reason in ("queue_full", "tenant", "deadline")
            assert exc.queue_depth >= 0
        serving = mediator.health_snapshot()["serving"]
        assert serving["submitted"] == total
        assert serving["submitted"] == serving["admitted"] + serving["shed"]
        assert serving["admitted"] == serving["completed"]
        assert serving["inflight"] == 0 and serving["queue_depth"] == 0
        # completed answers are still correct, not torn, under pressure
        reference = {
            query: canonical(
                build_scaled_scenario(
                    8, seed=1996, push_mode="needed"
                ).mediator.answer(query)
            )
            for query in QUERIES
        }
        for query, answer in results:
            assert answer == reference[query], query


def test_concurrent_queries_respect_tenant_quota():
    config = AdmissionConfig(
        max_concurrent=8, max_queue_depth=64,
        tenant_quota=1, adaptive=False,
    )
    with _shared_mediator(config, people=8) as mediator:
        results, sheds, errors = _run_clients(
            mediator, threads=8, rounds=2
        )
        assert errors == []
        assert len(results) + len(sheds) == 16
        for exc in sheds:
            assert exc.reason == "tenant"
            assert exc.tenant is not None

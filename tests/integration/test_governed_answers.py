"""End-to-end behaviour of governed mediator runs.

The acceptance scenarios of the query governor: a query that exceeds
its budget aborts with a structured :class:`BudgetExceeded` in strict
mode and finishes with a partial, warned answer in truncate mode; a
source returning malformed OEM no longer crashes the run in quarantine
(or degrade) mode; cancellation and deadlines cut runs short without
sleeping.
"""

import pytest

from repro.datasets import (
    JOE_CHUNG_QUERY,
    MS1,
    YEAR3_QUERY,
    build_cs_database,
    build_scenario,
    build_whois_objects,
)
from repro.external.registry import default_registry
from repro.governor import (
    BudgetExceeded,
    BudgetWarning,
    CancellationToken,
    QueryBudget,
    QueryCancelled,
)
from repro.mediator import Mediator
from repro.oem import structural_key
from repro.reliability import (
    FaultInjectingSource,
    ManualClock,
    ResilienceConfig,
)
from repro.wrappers import OEMStoreWrapper, RelationalWrapper, SourceRegistry
from repro.wrappers.base import MalformedAnswerError

ALL_PERSONS = "P :- P:<cs_person {}>@med"


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def budgeted_scenario(budget, mode="strict", **mediator_kwargs):
    scenario = build_scenario()
    mediator = scenario.mediator
    mediator.budget = budget
    mediator.budget_mode = mode
    for key, value in mediator_kwargs.items():
        setattr(mediator, key, value)
    return mediator


def malformed_scenario(kind, **mediator_kwargs):
    registry = SourceRegistry()
    registry.register(
        FaultInjectingSource(
            OEMStoreWrapper("whois", build_whois_objects()),
            seed=11,
            malformed_rate=1.0,
            malformed_kind=kind,
        )
    )
    registry.register(RelationalWrapper("cs", build_cs_database()))
    return Mediator(
        "med", MS1, registry, default_registry(), **mediator_kwargs
    )


class TestStrictBudgets:
    def test_exceeding_total_rows_raises_structured_error(self):
        mediator = budgeted_scenario(QueryBudget(max_total_rows=4))
        with pytest.raises(BudgetExceeded) as excinfo:
            mediator.answer(ALL_PERSONS)
        error = excinfo.value
        assert error.budget == "max_total_rows"
        assert error.observed == 5
        assert error.limit == 4
        assert error.node  # names the plan node that overflowed
        assert "max_total_rows" in str(error)

    def test_exceeding_per_table_rows_raises(self):
        mediator = budgeted_scenario(QueryBudget(max_rows_per_table=1))
        with pytest.raises(BudgetExceeded) as excinfo:
            mediator.answer(ALL_PERSONS)
        assert excinfo.value.budget == "max_rows_per_table"

    def test_exceeding_external_calls_raises(self):
        mediator = budgeted_scenario(QueryBudget(max_external_calls=1))
        with pytest.raises(BudgetExceeded) as excinfo:
            mediator.answer(YEAR3_QUERY)  # needs 3 decomp calls
        assert excinfo.value.budget == "max_external_calls"

    def test_exceeding_result_objects_raises(self):
        mediator = budgeted_scenario(QueryBudget(max_result_objects=1))
        with pytest.raises(BudgetExceeded) as excinfo:
            mediator.answer(ALL_PERSONS)  # two cs persons
        assert excinfo.value.budget == "max_result_objects"

    def test_query_within_budget_is_untouched(self):
        baseline = canonical(build_scenario().mediator.answer(ALL_PERSONS))
        mediator = budgeted_scenario(
            QueryBudget(
                deadline=60.0,
                max_rows_per_table=1000,
                max_total_rows=10_000,
                max_result_objects=100,
                max_external_calls=100,
            )
        )
        results = mediator.query(ALL_PERSONS)
        assert canonical(results.objects()) == baseline
        assert results.complete


class TestTruncateBudgets:
    def test_truncated_run_finishes_with_budget_warnings(self):
        mediator = budgeted_scenario(
            QueryBudget(max_total_rows=4), mode="truncate"
        )
        results = mediator.query(ALL_PERSONS)
        assert not results.complete
        budget_warnings = [
            w for w in results.warnings if isinstance(w, BudgetWarning)
        ]
        assert budget_warnings
        assert {w.budget for w in budget_warnings} == {"max_total_rows"}
        baseline = canonical(build_scenario().mediator.answer(ALL_PERSONS))
        assert set(canonical(results.objects())) <= set(baseline)

    def test_result_cap_clips_answer_to_exactly_n(self):
        mediator = budgeted_scenario(
            QueryBudget(max_result_objects=1), mode="truncate"
        )
        results = mediator.query(ALL_PERSONS)
        assert len(results) == 1
        assert any(
            w.budget == "max_result_objects" for w in results.warnings
        )

    def test_explain_reports_the_governor(self):
        mediator = budgeted_scenario(
            QueryBudget(max_total_rows=7), mode="truncate"
        )
        text = mediator.explain(JOE_CHUNG_QUERY)
        assert "-- governor --" in text
        assert "mode: truncate" in text
        assert "max_total_rows=7" in text

    def test_export_respects_result_cap(self):
        mediator = budgeted_scenario(
            QueryBudget(max_result_objects=1), mode="truncate"
        )
        results = list(mediator.export())
        assert len(results) == 1


class TestDeadlines:
    def slow_mediator(self, mode, latency=0.4, deadline=0.5):
        clock = ManualClock()
        registry = SourceRegistry()
        registry.register(
            FaultInjectingSource(
                OEMStoreWrapper("whois", build_whois_objects()),
                latency=latency,
                clock=clock,
            )
        )
        registry.register(
            FaultInjectingSource(
                RelationalWrapper("cs", build_cs_database()),
                latency=latency,
                clock=clock,
            )
        )
        return Mediator(
            "med",
            MS1,
            registry,
            default_registry(),
            resilience=ResilienceConfig(),
            clock=clock,
            budget=QueryBudget(deadline=deadline),
            budget_mode=mode,
        )

    def test_strict_deadline_aborts_without_sleeping(self):
        mediator = self.slow_mediator("strict")
        with pytest.raises(BudgetExceeded) as excinfo:
            mediator.answer(ALL_PERSONS)
        assert excinfo.value.budget == "deadline"

    def test_truncate_deadline_returns_partial_answer(self):
        mediator = self.slow_mediator("truncate")
        results = mediator.query(ALL_PERSONS)
        baseline = canonical(build_scenario().mediator.answer(ALL_PERSONS))
        assert set(canonical(results.objects())) <= set(baseline)
        assert any(w.budget == "deadline" for w in results.warnings)

    def test_fast_sources_beat_the_deadline(self):
        mediator = self.slow_mediator("strict", latency=0.01, deadline=60.0)
        baseline = canonical(build_scenario().mediator.answer(ALL_PERSONS))
        assert canonical(mediator.answer(ALL_PERSONS)) == baseline


class TestCancellation:
    def test_pre_cancelled_token_stops_the_run(self):
        token = CancellationToken()
        token.cancel("operator abort")
        mediator = budgeted_scenario(
            QueryBudget(max_total_rows=1000), cancellation=token
        )
        with pytest.raises(QueryCancelled, match="operator abort"):
            mediator.answer(ALL_PERSONS)

    def test_token_without_budget_is_enough_to_govern(self):
        token = CancellationToken()
        mediator = build_scenario().mediator
        mediator.cancellation = token
        results = mediator.query(ALL_PERSONS)  # live token: normal run
        assert results.complete
        token.cancel()
        with pytest.raises(QueryCancelled):
            mediator.answer(ALL_PERSONS)


class TestMalformedAnswers:
    @pytest.mark.parametrize("kind", ["flat", "deep", "typed", "cyclic"])
    def test_quarantine_mode_never_crashes(self, kind):
        mediator = malformed_scenario(
            kind, on_malformed_answer="quarantine"
        )
        results = mediator.query(ALL_PERSONS)
        assert not results.complete
        assert all(
            w.error == "MalformedAnswer" for w in results.warnings
        )

    def test_error_mode_with_sanitizer_raises(self):
        mediator = malformed_scenario(
            "typed", budget=QueryBudget(max_depth=64)
        )
        with pytest.raises(MalformedAnswerError) as excinfo:
            mediator.answer(ALL_PERSONS)
        assert excinfo.value.source == "whois"
        assert excinfo.value.issues

    def test_degrade_mode_treats_malformed_source_as_unavailable(self):
        mediator = malformed_scenario(
            "cyclic",
            budget=QueryBudget(max_depth=64),
            on_source_failure="degrade",
        )
        results = mediator.query(ALL_PERSONS)
        assert results.objects() == []
        (warning,) = results.warnings
        assert warning.source == "whois"
        assert warning.error == "MalformedAnswerError"

    def test_repeated_identical_warnings_fold_with_count(self):
        mediator = malformed_scenario(
            "typed", on_malformed_answer="quarantine"
        )
        results = mediator.query(ALL_PERSONS)
        # the typed answer carries two corrupt sub-objects per call;
        # identical (source, error) pairs fold into one counted record
        (warning,) = [
            w for w in results.warnings if w.source == "whois"
        ]
        assert warning.count >= 2
        assert f"[x{warning.count}]" in warning.render()

    def test_quarantine_keeps_well_formed_objects(self):
        # one malformed call out of many: the clean answers survive
        registry = SourceRegistry()
        registry.register(
            FaultInjectingSource(
                OEMStoreWrapper("whois", build_whois_objects()),
                seed=5,
                malformed_rate=0.0,
                malformed_kind="typed",
            )
        )
        registry.register(RelationalWrapper("cs", build_cs_database()))
        mediator = Mediator(
            "med",
            MS1,
            registry,
            default_registry(),
            on_malformed_answer="quarantine",
        )
        baseline = canonical(build_scenario().mediator.answer(ALL_PERSONS))
        results = mediator.query(ALL_PERSONS)
        assert canonical(results.objects()) == baseline
        assert results.complete

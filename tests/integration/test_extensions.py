"""Integration tests for the extension features.

* the fusion variant of the staff view (single-source people included);
* comparison shipping into comparison-capable sources;
* external calls and comparisons inside *queries* (passthrough
  conditions), end to end through the engine;
* joins across two mediators in one query;
* failure injection: a source erroring mid-plan surfaces cleanly.
"""

import pytest

from repro.datasets import (
    MS1_FUSION,
    build_cs_database,
    build_scenario,
    build_whois_objects,
)
from repro.mediator import Mediator
from repro.msl import Rule, parse_rule
from repro.oem import atom, obj, to_python
from repro.wrappers import (
    Capability,
    OEMStoreWrapper,
    RelationalWrapper,
    SourceError,
    SourceRegistry,
    Wrapper,
)


class TestFusionStaffView:
    @pytest.fixture
    def mediator(self):
        registry = SourceRegistry()
        whois = OEMStoreWrapper("whois", build_whois_objects())
        whois.add(
            obj(
                "person",
                atom("name", "Only Whois"),
                atom("dept", "CS"),
                atom("relation", "student"),
            )
        )
        cs = RelationalWrapper(
            "cs", build_cs_database(extra_students=[("Sue", "Solo", 1)])
        )
        registry.register(whois)
        registry.register(cs)
        return Mediator("med", MS1_FUSION, registry)

    def test_single_source_people_included(self, mediator):
        names = {o.get("name") for o in mediator.export()}
        assert names == {
            "Joe Chung",
            "Nick Naive",
            "Only Whois",
            "Sue Solo",
        }

    def test_both_source_people_fused(self, mediator):
        view = mediator.export()
        (joe,) = [o for o in view if o.get("name") == "Joe Chung"]
        assert to_python(joe) == {
            "name": "Joe Chung",
            "rel": "employee",
            "e_mail": "chung@cs",  # from whois
            "title": "professor",  # from cs
            "reports_to": "John Hennessy",
        }

    def test_semantic_oid_identity(self, mediator):
        from repro.oem import SemanticOid

        view = mediator.export()
        (joe,) = [o for o in view if o.get("name") == "Joe Chung"]
        assert joe.oid == SemanticOid("person", ["Chung", "Joe"])

    def test_point_query_fuses_across_rules(self, mediator):
        (joe,) = mediator.answer(
            "JC :- JC:<cs_person {<name 'Joe Chung'>}>@med"
        )
        assert joe.get("e_mail") == "chung@cs"
        assert joe.get("title") == "professor"


class TestComparisonShipping:
    def test_comparison_shipped_when_supported(self):
        scenario = build_scenario(push_mode="needed")
        query = "S :- S:<cs_person {<name N> <year Y>}>@med AND Y > 2"
        text = scenario.mediator.explain(query)
        # the comparison appears inside at least one shipped query
        assert "| Rest1_r1:{<year Y_q>}}> AND Y_q > 2" in text.replace(
            "\n", " "
        ) or "Y_q > 2  <-" not in text
        (nick,) = scenario.mediator.answer(query)
        assert nick.get("name") == "Nick Naive"

    def test_comparison_filtered_at_mediator_when_unsupported(self):
        capability = Capability(supports_comparisons=False, name="nocmp")
        scenario = build_scenario(
            push_mode="needed", whois_capability=capability
        )
        query = "S :- S:<cs_person {<name N> <year Y>}>@med AND Y > 2"
        (nick,) = scenario.mediator.answer(query)
        assert nick.get("name") == "Nick Naive"
        # the plan contains a mediator-side filter node
        assert "filter" in scenario.mediator.explain(query)

    def test_shipped_and_compensated_agree(self):
        query = "S :- S:<cs_person {<name N> <year Y>}>@med AND Y >= 3"
        supported = build_scenario(push_mode="needed")
        unsupported = build_scenario(
            push_mode="needed",
            whois_capability=Capability(
                supports_comparisons=False, name="nocmp"
            ),
        )
        left = {str(o) for o in supported.mediator.answer(query)}
        right = {str(o) for o in unsupported.mediator.answer(query)}

        import re

        def strip(texts):
            return {re.sub(r"&[\w.]+", "&", t) for t in texts}

        assert strip(left) == strip(right)


class TestQueryLevelExternals:
    def test_undeclared_external_in_query_fails_cleanly(self):
        from repro.mediator import PlanningError

        scenario = build_scenario(push_mode="needed")
        with pytest.raises(PlanningError, match="cannot be scheduled"):
            scenario.mediator.answer(
                "<shout U> :- <cs_person {<name N>}>@med AND upper(N, U)"
            )

    def test_external_declared_in_spec_usable_in_query(self):
        registry = SourceRegistry()
        registry.register(OEMStoreWrapper("whois", build_whois_objects()))
        registry.register(RelationalWrapper("cs", build_cs_database()))
        spec = (
            "<cs_person {<name N> <rel R> Rest1 Rest2}> :-"
            " <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois"
            " AND decomp(N, LN, FN)"
            " AND <R {<first_name FN> <last_name LN> | Rest2}>@cs ;"
            "EXT decomp(bound, free, free) BY name_to_lnfn ;"
            "EXT decomp(free, bound, bound) BY lnfn_to_name ;"
            "EXT upper(bound, free) BY to_upper ;"
        )
        mediator = Mediator("med", spec, registry)
        result = mediator.answer(
            "<shout U> :- <cs_person {<name N>}>@med AND upper(N, U)"
        )
        assert sorted(o.value for o in result) == ["JOE CHUNG", "NICK NAIVE"]

    def test_decomp_usable_directly_in_query(self):
        scenario = build_scenario(push_mode="needed")
        result = scenario.mediator.answer(
            "<last LN> :- <cs_person {<name N>}>@med AND decomp(N, LN, FN)"
        )
        assert sorted(o.value for o in result) == ["Chung", "Naive"]


class TestCrossMediatorJoin:
    def test_query_joins_two_mediators(self):
        scenario = build_scenario(push_mode="needed")
        # a second mediator over a separate source
        registry = scenario.registry
        registry.register(
            OEMStoreWrapper(
                "phonebook",
                [
                    obj(
                        "listing",
                        atom("who", "Joe Chung"),
                        atom("phone", "650-1234"),
                    )
                ],
            )
        )
        Mediator(
            "phones",
            "<contact {<who W> <phone P>}> :-"
            " <listing {<who W> <phone P>}>@phonebook",
            registry,
        )
        query = (
            "<card {<name N> <rel R> <phone P>}> :-"
            " <cs_person {<name N> <rel R>}>@med"
            " AND <contact {<who N> <phone P>}>@phones"
        )
        # send the query to med; the @phones condition passes through
        # and the engine ships it to the phones mediator
        result = scenario.mediator.answer(query)
        assert len(result) == 1
        assert to_python(result[0]) == {
            "name": "Joe Chung",
            "rel": "employee",
            "phone": "650-1234",
        }


class _ExplodingWrapper(Wrapper):
    """A source that fails after its first successful answer."""

    def __init__(self, name, objects):
        super().__init__(name)
        self._objects = list(objects)
        self.calls = 0

    def export(self):
        return self._objects

    def answer(self, query: Rule):
        self.calls += 1
        if self.calls > 1:
            raise SourceError(f"{self.name}: connection lost")
        return super().answer(query)


class TestFailureInjection:
    def test_source_error_propagates_with_context(self):
        registry = SourceRegistry()
        exploding = _ExplodingWrapper(
            "flaky",
            [obj("rec", atom("k", i), atom("v", i)) for i in range(3)],
        )
        registry.register(exploding)
        registry.register(
            OEMStoreWrapper(
                "stable",
                [obj("rec", atom("k", i)) for i in range(3)],
            )
        )
        mediator = Mediator(
            "m",
            "<out {<k K> <v V>}> :-"
            " <rec {<k K>}>@stable AND <rec {<k K> <v V>}>@flaky",
            registry,
        )
        with pytest.raises(SourceError, match="connection lost"):
            mediator.export()

    def test_unknown_source_in_spec_fails_at_answer_time(self):
        registry = SourceRegistry(
            OEMStoreWrapper("real", [obj("rec", atom("k", 1))])
        )
        mediator = Mediator(
            "m", "<out {<k K>}> :- <rec {<k K>}>@ghost", registry
        )
        with pytest.raises(SourceError, match="no source named"):
            mediator.answer("X :- X:<out {<k 1>}>@m")

"""Integration: the MSI pipeline survives faulty and dead sources.

The acceptance scenario of the reliability layer, asserted end to end
and deterministically (seeded fault schedules, manual clocks, no real
sleeps):

* in ``fail`` mode a seeded 30%-transient-fault ``whois`` wrapper still
  answers the Figure 2.4 integration query exactly, via retries;
* in ``degrade`` mode a permanently dead source yields the remaining
  sources' answers plus structured warnings;
* the per-source breaker opens after its threshold and half-opens
  after the cooldown, then recovery closes it.
"""

import pytest

from repro.datasets import (
    JOE_CHUNG_QUERY,
    MS1,
    MS1_FUSION,
    build_cs_database,
    build_scenario,
    build_whois_objects,
)
from repro.external.registry import default_registry
from repro.mediator import Mediator
from repro.oem import structural_key, to_python
from repro.reliability import (
    CLOSED,
    FaultInjectingSource,
    HALF_OPEN,
    ManualClock,
    OPEN,
    ResilienceConfig,
    ResilienceManager,
    RetryPolicy,
    SourceUnavailable,
)
from repro.wrappers import OEMStoreWrapper, RelationalWrapper, SourceRegistry


def canonical(objects):
    return sorted(repr(structural_key(o)) for o in objects)


def build_resilient_scenario(
    spec=MS1,
    seed=1996,
    fault_rate=0.0,
    dead=False,
    on_source_failure="fail",
    retry=None,
    breaker_threshold=5,
    breaker_cooldown=30.0,
):
    """The staff scenario with a fault-injected ``whois`` source."""
    clock = ManualClock()
    registry = SourceRegistry()
    whois = FaultInjectingSource(
        OEMStoreWrapper("whois", build_whois_objects()),
        seed=seed,
        fault_rate=fault_rate,
        dead=dead,
        clock=clock,
    )
    registry.register(whois)
    registry.register(RelationalWrapper("cs", build_cs_database()))
    mediator = Mediator(
        "med",
        spec,
        registry,
        default_registry(),
        on_source_failure=on_source_failure,
        resilience=ResilienceConfig(
            retry=retry
            or RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.0),
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
        ),
        clock=clock,
    )
    return mediator, whois, clock


class TestFailModeRetries:
    def test_fig_2_4_query_survives_30_percent_transient_faults(self):
        baseline = build_scenario().mediator.answer(JOE_CHUNG_QUERY)
        mediator, whois, _ = build_resilient_scenario(seed=6, fault_rate=0.3)
        answers = [mediator.answer(JOE_CHUNG_QUERY) for _ in range(20)]
        # every answer is exactly the fault-free Figure 2.4 object ...
        for answer in answers:
            assert canonical(answer) == canonical(baseline)
            assert to_python(answer[0])["name"] == "Joe Chung"
        # ... and the fault schedule really fired (retries did the work)
        assert "fault" in whois.outcomes
        health = mediator.health_snapshot()["sources"]["whois"]
        assert health.failures >= 1
        assert health.retries == health.failures
        assert health.breaker_state == CLOSED

    def test_fail_mode_dead_source_aborts_the_query(self):
        mediator, _, _ = build_resilient_scenario(dead=True)
        with pytest.raises(SourceUnavailable):
            mediator.answer(JOE_CHUNG_QUERY)
        assert mediator.last_warnings == []


class TestDegradeMode:
    def test_dead_source_yields_remaining_sources_plus_warnings(self):
        # the fusion view takes one rule per source, so the cs side can
        # still contribute when whois is permanently down
        baseline = Mediator(
            "med",
            MS1_FUSION,
            SourceRegistry(
                OEMStoreWrapper("whois", build_whois_objects()),
                RelationalWrapper("cs", build_cs_database()),
            ),
            default_registry(),
        ).answer(JOE_CHUNG_QUERY)

        mediator, whois, _ = build_resilient_scenario(
            spec=MS1_FUSION, dead=True, on_source_failure="degrade"
        )
        results = mediator.query(JOE_CHUNG_QUERY)

        assert len(results) >= 1  # the cs contribution survived
        degraded = to_python(results[0])
        fault_free = to_python(baseline[0])
        assert degraded["name"] == "Joe Chung"
        # every surviving field agrees with the fault-free answer; the
        # whois-only fields (e_mail) are what went missing
        assert set(degraded) <= set(fault_free)
        assert all(fault_free[key] == value for key, value in degraded.items())
        assert "e_mail" in fault_free and "e_mail" not in degraded
        assert results.warnings, "a degraded answer must carry warnings"
        assert not results.complete
        assert all(w.source == "whois" for w in results.warnings)
        assert all(w.attempts >= 1 for w in results.warnings)
        assert "degraded" in results.render_warnings()

    def test_join_view_degrades_to_empty_but_does_not_raise(self):
        # MS1 joins whois and cs: without whois there is nothing to
        # join, but the query must still return (empty + warnings)
        mediator, _, _ = build_resilient_scenario(
            spec=MS1, dead=True, on_source_failure="degrade"
        )
        results = mediator.query(JOE_CHUNG_QUERY)
        assert len(results) == 0
        assert results.warnings

    def test_transient_faults_with_retries_lose_nothing(self):
        baseline = build_scenario().mediator.answer(JOE_CHUNG_QUERY)
        mediator, _, _ = build_resilient_scenario(
            seed=6, fault_rate=0.3, on_source_failure="degrade"
        )
        for _ in range(10):
            results = mediator.query(JOE_CHUNG_QUERY)
            assert canonical(results.objects()) == canonical(baseline)
            assert results.complete

    def test_export_degrades_too(self):
        mediator, _, _ = build_resilient_scenario(
            spec=MS1_FUSION, dead=True, on_source_failure="degrade"
        )
        view = mediator.export()
        assert len(view) >= 1  # the cs rule materialized
        assert mediator.last_warnings

    def test_materialization_path_degrades(self):
        # wildcard queries bypass the pipeline and pull whole exports;
        # the reliability layer must cover that path as well
        mediator, _, _ = build_resilient_scenario(
            spec=MS1_FUSION, dead=True, on_source_failure="degrade"
        )
        results = mediator.query(
            "X :- X:<cs_person {.. <rel 'employee'>}>@med"
        )
        assert mediator.last_warnings
        assert results.warnings


class TestBreakerLifecycle:
    def test_breaker_opens_then_half_opens_then_recovers(self):
        mediator, whois, clock = build_resilient_scenario(
            spec=MS1,
            dead=True,
            on_source_failure="degrade",
            retry=RetryPolicy(max_attempts=2, base_delay=0.05, jitter=0.0),
            breaker_threshold=3,
            breaker_cooldown=100.0,
        )
        # the complete push mode ships two whois queries per answer:
        # the first burns 2 attempts (try + retry), the third attempt
        # of the second query trips the threshold-3 breaker
        mediator.answer(JOE_CHUNG_QUERY)
        breaker = mediator.resilience.breaker_for("whois")
        assert breaker is not None
        assert whois.calls == 3
        assert breaker.state == OPEN
        assert breaker.consecutive_failures == 3

        # while open, the source is never touched
        calls_when_open = whois.calls
        mediator.answer(JOE_CHUNG_QUERY)
        assert whois.calls == calls_when_open
        health = mediator.health_snapshot()["sources"]["whois"]
        assert health.breaker_state == OPEN
        assert health.rejections >= 1

        # cooldown elapses on the manual clock: half-open
        clock.advance(100.0)
        assert breaker.state == HALF_OPEN

        # the source comes back; the probe succeeds and closes it
        whois.dead = False
        baseline = build_scenario().mediator.answer(JOE_CHUNG_QUERY)
        results = mediator.query(JOE_CHUNG_QUERY)
        assert canonical(results.objects()) == canonical(baseline)
        assert results.complete
        assert breaker.state == CLOSED

    def test_no_real_time_passed(self):
        # the whole lifecycle above runs on a manual clock; this guard
        # asserts the suite's promise of never sleeping for real
        mediator, _, clock = build_resilient_scenario(
            dead=True, on_source_failure="degrade"
        )
        mediator.answer(JOE_CHUNG_QUERY)
        assert clock.sleeps  # backoff happened ...
        assert clock.now() == sum(clock.sleeps)  # ... only on the fake clock
